// In-memory DFS: file lifecycle, stable line storage, split computation.
#include "mapreduce/dfs.h"

#include <gtest/gtest.h>

namespace fj::mr {
namespace {

TEST(DfsTest, WriteReadDelete) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("f", {"a", "b"}).ok());
  EXPECT_TRUE(dfs.Exists("f"));
  auto lines = dfs.ReadFile("f");
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(*lines.value(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(dfs.FileLines("f").value(), 2u);
  EXPECT_EQ(dfs.FileBytes("f").value(), 4u);  // "a\n" + "b\n"
  ASSERT_TRUE(dfs.DeleteFile("f").ok());
  EXPECT_FALSE(dfs.Exists("f"));
  EXPECT_EQ(dfs.ReadFile("f").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(dfs.DeleteFile("f").code(), StatusCode::kNotFound);
}

TEST(DfsTest, WriteRefusesOverwrite) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("f", {"a"}).ok());
  EXPECT_EQ(dfs.WriteFile("f", {"b"}).code(), StatusCode::kAlreadyExists);
}

TEST(DfsTest, AppendCreatesAndExtends) {
  Dfs dfs;
  ASSERT_TRUE(dfs.AppendToFile("f", {"1"}).ok());
  ASSERT_TRUE(dfs.AppendToFile("f", {"2", "3"}).ok());
  EXPECT_EQ(*dfs.ReadFile("f").value(),
            (std::vector<std::string>{"1", "2", "3"}));
}

TEST(DfsTest, LinePointersStableAcrossOtherWrites) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("f", {"x"}).ok());
  const std::vector<std::string>* before = dfs.ReadFile("f").value();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(dfs.WriteFile("g" + std::to_string(i), {"y"}).ok());
  }
  EXPECT_EQ(before, dfs.ReadFile("f").value());
  EXPECT_EQ((*before)[0], "x");
}

// Regression: a job may hold a ReadFile pointer while later jobs append to
// other files (the pipeline appends stage outputs while stage inputs are
// still being mapped). The pointed-to vector must stay valid and splits
// computed before a growth must stay in range afterwards.
TEST(DfsTest, ReadPointerStableWhileFilesGrow) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("stable", {"s0", "s1", "s2"}).ok());
  ASSERT_TRUE(dfs.WriteFile("growing", {"g0"}).ok());

  const std::vector<std::string>* stable = dfs.ReadFile("stable").value();
  const std::vector<std::string>* growing = dfs.ReadFile("growing").value();
  auto splits = dfs.MakeSplits({"stable"}, 2);
  ASSERT_TRUE(splits.ok());

  // Grow an unrelated file well past any small-vector capacity and create
  // enough new files to force map rebalancing if storage were not
  // pointer-stable.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(dfs.AppendToFile("growing", {"g" + std::to_string(i)}).ok());
    ASSERT_TRUE(dfs.WriteFile("extra" + std::to_string(i), {"e"}).ok());
  }

  EXPECT_EQ(stable, dfs.ReadFile("stable").value());
  EXPECT_EQ((*stable)[0], "s0");
  EXPECT_EQ((*stable)[2], "s2");
  // The documented append semantics: the pre-append pointer addresses the
  // same vector, so it observes every appended line.
  EXPECT_EQ(growing, dfs.ReadFile("growing").value());
  EXPECT_EQ(growing->size(), 201u);
  EXPECT_EQ(growing->front(), "g0");
  EXPECT_EQ(growing->back(), "g199");
  // The pre-growth splits still address exactly the original lines.
  size_t covered = 0;
  for (const auto& s : *splits) {
    EXPECT_LE(s.end_line, stable->size());
    covered += s.end_line - s.begin_line;
  }
  EXPECT_EQ(covered, 3u);
}

// Splits recomputed after growth must cover the appended lines too.
TEST(DfsTest, SplitsTrackFileGrowth) {
  Dfs dfs;
  ASSERT_TRUE(dfs.AppendToFile("f", {"a", "b"}).ok());
  auto before = dfs.MakeSplits({"f"}, 3);
  ASSERT_TRUE(before.ok());
  size_t covered_before = 0;
  for (const auto& s : *before) covered_before += s.end_line - s.begin_line;
  EXPECT_EQ(covered_before, 2u);

  ASSERT_TRUE(dfs.AppendToFile("f", std::vector<std::string>(50, "x")).ok());
  auto after = dfs.MakeSplits({"f"}, 3);
  ASSERT_TRUE(after.ok());
  size_t covered_after = 0;
  size_t expect_begin = 0;
  for (const auto& s : *after) {
    EXPECT_EQ(s.begin_line, expect_begin);
    expect_begin = s.end_line;
    covered_after += s.end_line - s.begin_line;
  }
  EXPECT_EQ(covered_after, 52u);
}

TEST(DfsTest, ListFilesSorted) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("b", {}).ok());
  ASSERT_TRUE(dfs.WriteFile("a", {}).ok());
  EXPECT_EQ(dfs.ListFiles(), (std::vector<std::string>{"a", "b"}));
  dfs.Clear();
  EXPECT_TRUE(dfs.ListFiles().empty());
}

TEST(DfsTest, SplitsCoverEveryLineExactlyOnce) {
  Dfs dfs;
  std::vector<std::string> lines(103, "l");
  ASSERT_TRUE(dfs.WriteFile("f", lines).ok());
  for (size_t target : {0u, 1u, 4u, 7u, 103u, 200u}) {
    auto splits = dfs.MakeSplits({"f"}, target);
    ASSERT_TRUE(splits.ok()) << target;
    size_t covered = 0;
    size_t expect_begin = 0;
    for (const auto& s : *splits) {
      EXPECT_EQ(s.begin_line, expect_begin);
      EXPECT_GT(s.end_line, s.begin_line);  // no empty splits
      covered += s.end_line - s.begin_line;
      expect_begin = s.end_line;
    }
    EXPECT_EQ(covered, 103u) << "target " << target;
  }
}

TEST(DfsTest, SplitsProportionalAcrossFiles) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("big", std::vector<std::string>(90, "x")).ok());
  ASSERT_TRUE(dfs.WriteFile("small", std::vector<std::string>(10, "y")).ok());
  auto splits = dfs.MakeSplits({"big", "small"}, 10);
  ASSERT_TRUE(splits.ok());
  size_t big_splits = 0, small_splits = 0;
  for (const auto& s : *splits) {
    EXPECT_EQ(s.file_name, s.file_index == 0 ? "big" : "small");
    (s.file_index == 0 ? big_splits : small_splits)++;
  }
  EXPECT_GT(big_splits, small_splits);
  EXPECT_GE(small_splits, 1u);  // non-empty files always get a split
}

TEST(DfsTest, SplitsSkipEmptyFiles) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("empty", {}).ok());
  ASSERT_TRUE(dfs.WriteFile("full", {"a"}).ok());
  auto splits = dfs.MakeSplits({"empty", "full"}, 4);
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits->size(), 1u);
  EXPECT_EQ((*splits)[0].file_index, 1u);
}

TEST(DfsTest, SplitsMissingFileFails) {
  Dfs dfs;
  EXPECT_EQ(dfs.MakeSplits({"nope"}, 2).status().code(),
            StatusCode::kNotFound);
}

// --- integrity metadata and atomic commits ------------------------------

TEST(DfsTest, RenameMovesContentAndChecksum) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("tmp", {"a", "b"}).ok());
  uint64_t checksum = dfs.FileChecksum("tmp").value();
  ASSERT_TRUE(dfs.RenameFile("tmp", "final").ok());
  EXPECT_FALSE(dfs.Exists("tmp"));
  EXPECT_EQ(*dfs.ReadFile("final").value(),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(dfs.FileChecksum("final").value(), checksum);
  EXPECT_TRUE(dfs.VerifyFile("final").ok());
}

TEST(DfsTest, RenameOverExistingNameFailsAndChangesNothing) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("from", {"new"}).ok());
  ASSERT_TRUE(dfs.WriteFile("to", {"old"}).ok());
  Status renamed = dfs.RenameFile("from", "to");
  EXPECT_EQ(renamed.code(), StatusCode::kAlreadyExists);
  // Both files keep their contents: a failed commit must not clobber the
  // already-published output.
  EXPECT_EQ(*dfs.ReadFile("from").value(), (std::vector<std::string>{"new"}));
  EXPECT_EQ(*dfs.ReadFile("to").value(), (std::vector<std::string>{"old"}));
}

TEST(DfsTest, RenameMissingSourceFails) {
  Dfs dfs;
  EXPECT_EQ(dfs.RenameFile("nope", "to").code(), StatusCode::kNotFound);
  EXPECT_FALSE(dfs.Exists("to"));
}

TEST(DfsTest, DeleteThenAppendStartsFresh) {
  Dfs dfs;
  ASSERT_TRUE(dfs.AppendToFile("f", {"old1", "old2"}).ok());
  const std::vector<std::string>* old_ptr = dfs.ReadFile("f").value();
  ASSERT_TRUE(dfs.DeleteFile("f").ok());
  ASSERT_TRUE(dfs.AppendToFile("f", {"new"}).ok());
  const std::vector<std::string>* new_ptr = dfs.ReadFile("f").value();
  // The recreated file is a fresh entry: old content is gone, the new
  // lines verify, and callers must re-fetch the pointer.
  EXPECT_EQ(*new_ptr, (std::vector<std::string>{"new"}));
  EXPECT_TRUE(dfs.VerifyFile("f").ok());
  (void)old_ptr;  // dangling by contract; never dereferenced
}

TEST(DfsTest, ReadPointerSurvivesRename) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("tmp", {"line0", "line1"}).ok());
  const std::vector<std::string>* reader = dfs.ReadFile("tmp").value();
  // A concurrent reader mid-scan while the producer commits: the rename
  // moves the storage, so the lines stay readable through the old pointer.
  ASSERT_TRUE(dfs.RenameFile("tmp", "final").ok());
  EXPECT_EQ((*reader)[0], "line0");
  EXPECT_EQ((*reader)[1], "line1");
  EXPECT_EQ(reader, dfs.ReadFile("final").value());
}

TEST(DfsTest, VerifyCleanFileReportsBytes) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("f", {"ab", "c"}).ok());
  auto bytes = dfs.VerifyFile("f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), 5u);  // "ab\n" + "c\n"
}

TEST(DfsTest, CorruptByteIsDetectedByVerify) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("f", {"hello", "world"}).ok());
  ASSERT_TRUE(dfs.VerifyFile("f").ok());
  ASSERT_TRUE(dfs.CorruptByteForTest("f", 17).ok());
  auto verified = dfs.VerifyFile("f");
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.status().code(), StatusCode::kDataLoss);
  // The stored whole-file checksum still reflects the original content, so
  // a manifest holding it will not validate the corrupted file either.
  EXPECT_TRUE(dfs.FileChecksum("f").ok());
}

TEST(DfsTest, CorruptByteIsDeterministic) {
  Dfs dfs1, dfs2;
  for (Dfs* dfs : {&dfs1, &dfs2}) {
    ASSERT_TRUE(dfs->WriteFile("f", {"aaaa", "bbbb", "cccc"}).ok());
    ASSERT_TRUE(dfs->CorruptByteForTest("f", 99).ok());
  }
  EXPECT_EQ(*dfs1.ReadFile("f").value(), *dfs2.ReadFile("f").value());
  EXPECT_NE(*dfs1.ReadFile("f").value(),
            (std::vector<std::string>{"aaaa", "bbbb", "cccc"}));
}

TEST(DfsTest, CorruptByteRefusesEmptyFiles) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("f", {}).ok());
  EXPECT_EQ(dfs.CorruptByteForTest("f", 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(dfs.CorruptByteForTest("nope", 1).code(), StatusCode::kNotFound);
}

TEST(DfsTest, AppendExtendsChecksumIncrementally) {
  Dfs dfs;
  ASSERT_TRUE(dfs.AppendToFile("f", {"a"}).ok());
  ASSERT_TRUE(dfs.AppendToFile("f", {"b", "c"}).ok());
  // The incrementally maintained hash must equal a from-scratch write of
  // the same content.
  Dfs fresh;
  ASSERT_TRUE(fresh.WriteFile("f", {"a", "b", "c"}).ok());
  EXPECT_EQ(dfs.FileChecksum("f").value(), fresh.FileChecksum("f").value());
  EXPECT_TRUE(dfs.VerifyFile("f").ok());
}

}  // namespace
}  // namespace fj::mr
