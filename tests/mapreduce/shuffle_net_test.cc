// Socket-backed shuffle: frames, fault plans, worker servers, the socket
// transport's retry/liveness machinery, and the job engine's escalation
// ladder on top of it. Everything here runs real loopback TCP (in-process
// worker servers) — no mocks between the transport and the bytes.
//
// The invariant under test at every layer: moving the shuffle onto a
// faulty wire may change HOW bytes arrive (retries, redundant local
// reads, map re-runs) but never WHAT the job produces — and a byte
// flipped in transit is always a detected DataLoss, never silent output
// corruption.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "mapreduce/dfs.h"
#include "mapreduce/job.h"
#include "mapreduce/shuffle_segment.h"
#include "mapreduce/shuffle_transport.h"
#include "mapreduce/worker_net.h"

namespace fj::mr {
namespace {

using net::Frame;
using net::FrameType;
using net::RecvFrame;
using net::Request;
using net::Response;
using net::SendFrame;
using net::WorkerPool;
using net::WorkerServer;
using net::WorkerServerOptions;

// --- frames ---------------------------------------------------------------

TEST(FrameTest, RoundTripOverPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const std::string payload = "segment bytes \x00\xff with binary";
  ASSERT_TRUE(SendFrame(fds[1], FrameType::kPut, payload).ok());
  auto frame = RecvFrame(fds[0]);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kPut);
  EXPECT_EQ(frame->payload, payload);
  close(fds[0]);
  close(fds[1]);
}

TEST(FrameTest, CorruptPayloadIsDataLoss) {
  std::string wire;
  net::AppendFrame(&wire, FrameType::kOk, "response payload");
  wire[wire.size() - 3] ^= 0x20;  // flip a payload byte after hashing
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  ASSERT_TRUE(net::WriteAllFd(fds[1], wire).ok());
  auto frame = RecvFrame(fds[0]);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
  close(fds[0]);
  close(fds[1]);
}

TEST(FrameTest, PeerCloseMidFrameIsUnavailable) {
  std::string wire;
  net::AppendFrame(&wire, FrameType::kOk, "truncated in flight");
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  ASSERT_TRUE(net::WriteAllFd(fds[1], wire.substr(0, wire.size() / 2)).ok());
  close(fds[1]);  // peer dies mid-frame
  auto frame = RecvFrame(fds[0]);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
  close(fds[0]);
}

TEST(FrameTest, RequestAndResponseCodecsRoundTrip) {
  Request request;
  request.job = "job-a";
  request.map_task = 7;
  request.partition = 3;
  request.attempt = 2;
  request.body = std::string("\x01\x02\x00payload", 10);
  std::string payload;
  net::EncodeRequest(request, &payload);
  Request decoded;
  ASSERT_TRUE(net::DecodeRequest(payload, &decoded));
  EXPECT_EQ(decoded.job, request.job);
  EXPECT_EQ(decoded.map_task, request.map_task);
  EXPECT_EQ(decoded.partition, request.partition);
  EXPECT_EQ(decoded.attempt, request.attempt);
  EXPECT_EQ(decoded.body, request.body);
  // Truncation at any depth must fail the decode, not read garbage.
  for (size_t cut : {size_t{0}, payload.size() / 2, payload.size() - 1}) {
    Request ignored;
    EXPECT_FALSE(net::DecodeRequest(payload.substr(0, cut), &ignored));
  }

  Response response;
  response.status = Status::NotFound("no such segment");
  response.body = "partial";
  std::string encoded;
  net::EncodeResponse(response, &encoded);
  Response back;
  ASSERT_TRUE(net::DecodeResponse(encoded, &back));
  EXPECT_EQ(back.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(back.status.message(), "no such segment");
  EXPECT_EQ(back.body, "partial");
}

// --- fault plans ----------------------------------------------------------

TEST(NetFaultPlanTest, SerializeRoundTrip) {
  NetFaultPlan plan;
  plan.seed = 99;
  plan.drop_probability = 0.25;
  plan.truncate_probability = 0.125;
  plan.corrupt_probability = 0.5;
  plan.stall_probability = 0.0625;
  plan.delay_probability = 1.0;
  plan.refuse_connect_probability = 0.75;
  plan.delay_ms = 7;
  plan.stall_ms = 1234;
  plan.fault_attempts = 5;
  NetFaultPlan back;
  ASSERT_TRUE(NetFaultPlan::Deserialize(plan.Serialize(), &back));
  EXPECT_EQ(back.Serialize(), plan.Serialize());
  EXPECT_EQ(back.seed, plan.seed);
  EXPECT_EQ(back.corrupt_probability, plan.corrupt_probability);
  EXPECT_EQ(back.stall_ms, plan.stall_ms);
  EXPECT_EQ(back.fault_attempts, plan.fault_attempts);

  EXPECT_FALSE(NetFaultPlan::Deserialize("", &back));
  EXPECT_FALSE(NetFaultPlan::Deserialize("1:2:3", &back));
  EXPECT_FALSE(NetFaultPlan::Deserialize("x:0:0:0:0:0:0:20:400:2", &back));
  // Probabilities outside [0, 1] are rejected.
  EXPECT_FALSE(NetFaultPlan::Deserialize("1:1.5:0:0:0:0:0:20:400:2", &back));

  EXPECT_TRUE(NetFaultPlan{}.Empty());
  EXPECT_FALSE(plan.Empty());
}

TEST(NetFaultPlanTest, DrawIsDeterministicPerCoordinate) {
  NetFaultPlan plan;
  plan.seed = 3;
  const double a =
      NetFaultDraw(plan, "job", 1, 2, 0, NetOp::kFetch, /*salt=*/1);
  EXPECT_EQ(a, NetFaultDraw(plan, "job", 1, 2, 0, NetOp::kFetch, 1));
  EXPECT_GE(a, 0.0);
  EXPECT_LT(a, 1.0);
  // Any coordinate change moves the draw.
  EXPECT_NE(a, NetFaultDraw(plan, "job", 1, 2, 1, NetOp::kFetch, 1));
  EXPECT_NE(a, NetFaultDraw(plan, "job", 1, 3, 0, NetOp::kFetch, 1));
  EXPECT_NE(a, NetFaultDraw(plan, "job", 1, 2, 0, NetOp::kPush, 1));
  EXPECT_NE(a, NetFaultDraw(plan, "job2", 1, 2, 0, NetOp::kFetch, 1));
  EXPECT_NE(a, NetFaultDraw(plan, "job", 1, 2, 0, NetOp::kFetch, 2));
  NetFaultPlan reseeded = plan;
  reseeded.seed = 4;
  EXPECT_NE(a, NetFaultDraw(reseeded, "job", 1, 2, 0, NetOp::kFetch, 1));
}

TEST(TransportKindTest, ParseAndName) {
  TransportKind kind;
  ASSERT_TRUE(ParseTransportKind("inproc", &kind));
  EXPECT_EQ(kind, TransportKind::kInproc);
  ASSERT_TRUE(ParseTransportKind("socket", &kind));
  EXPECT_EQ(kind, TransportKind::kSocket);
  EXPECT_FALSE(ParseTransportKind("carrier-pigeon", &kind));
  EXPECT_STREQ(TransportKindName(TransportKind::kSocket), "socket");
  EXPECT_STREQ(TransportKindName(TransportKind::kInproc), "inproc");
}

// --- segments -------------------------------------------------------------

TEST(ShuffleSegmentTest, EncodeDecodePreservesRunOrderAndMetadata) {
  MapTaskOutput<std::string, uint64_t> output;
  output.spills.resize(2);
  output.spills[0].resize(2);
  output.spills[1].resize(2);
  SortedRun<std::string, uint64_t>& first = output.spills[0][1];
  first.pairs = {{"alpha", 1}, {"beta", 2}};
  first.record_count = 2;
  first.bytes = 40;
  SortedRun<std::string, uint64_t>& second = output.spills[1][1];
  second.pairs = {{"gamma", 3}};
  second.record_count = 1;
  second.bytes = 20;

  std::string segment;
  EncodeShuffleSegment(output, /*partition=*/1, /*verify=*/true, &segment);
  std::vector<SortedRun<std::string, uint64_t>> runs;
  ASSERT_TRUE(DecodeShuffleSegment(segment, &runs).ok());
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].record_count, 2u);
  EXPECT_EQ(runs[1].record_count, 1u);
  EXPECT_EQ(runs[0].bytes, 40u);
  EXPECT_FALSE(runs[0].encoded.empty());
  // Partition 0 is empty in both spills: zero runs, still decodable.
  std::string empty_segment;
  EncodeShuffleSegment(output, /*partition=*/0, true, &empty_segment);
  ASSERT_TRUE(DecodeShuffleSegment(empty_segment, &runs).ok());
  EXPECT_TRUE(runs.empty());
}

TEST(ShuffleSegmentTest, AnyFlippedByteIsDataLoss) {
  MapTaskOutput<std::string, uint64_t> output;
  output.spills.resize(1);
  output.spills[0].resize(1);
  output.spills[0][0].pairs = {{"key", 9}};
  output.spills[0][0].record_count = 1;
  std::string segment;
  EncodeShuffleSegment(output, 0, true, &segment);
  std::vector<SortedRun<std::string, uint64_t>> runs;
  for (size_t i = 0; i < segment.size(); ++i) {
    std::string corrupt = segment;
    corrupt[i] ^= 0x01;
    EXPECT_EQ(DecodeShuffleSegment(corrupt, &runs).code(),
              StatusCode::kDataLoss)
        << "byte " << i;
  }
  // Truncation too.
  EXPECT_EQ(DecodeShuffleSegment(std::string_view(segment).substr(
                                     0, segment.size() - 1),
                                 &runs)
                .code(),
            StatusCode::kDataLoss);
}

// --- worker server over real sockets --------------------------------------

Result<Response> Exchange(int port, FrameType type, const Request& request) {
  FJ_ASSIGN_OR_RETURN(int fd, net::DialTcpLoopback(port, 500, 2000));
  std::string payload;
  net::EncodeRequest(request, &payload);
  Status sent = SendFrame(fd, type, payload);
  if (!sent.ok()) {
    net::CloseFd(fd);
    return sent;
  }
  auto frame = RecvFrame(fd);
  net::CloseFd(fd);
  FJ_RETURN_IF_ERROR(frame.status());
  Response response;
  if (!net::DecodeResponse(frame->payload, &response)) {
    return Status::DataLoss("malformed response payload");
  }
  return response;
}

TEST(WorkerServerTest, ServesPutGetPingDropJob) {
  WorkerServer server;
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  Request put;
  put.job = "j";
  put.map_task = 4;
  put.partition = 2;
  put.body = "the segment";
  auto stored = Exchange(server.port(), FrameType::kPut, put);
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();
  EXPECT_TRUE(stored->status.ok());
  EXPECT_EQ(server.segments_stored(), 1u);

  Request get = put;
  get.body.clear();
  auto fetched = Exchange(server.port(), FrameType::kGet, get);
  ASSERT_TRUE(fetched.ok());
  ASSERT_TRUE(fetched->status.ok());
  EXPECT_EQ(fetched->body, "the segment");

  Request missing = get;
  missing.partition = 9;
  auto not_found = Exchange(server.port(), FrameType::kGet, missing);
  ASSERT_TRUE(not_found.ok());
  EXPECT_EQ(not_found->status.code(), StatusCode::kNotFound);

  auto ping = Exchange(server.port(), FrameType::kPing, Request{});
  ASSERT_TRUE(ping.ok());
  EXPECT_TRUE(ping->status.ok());

  Request drop;
  drop.job = "j";
  auto dropped = Exchange(server.port(), FrameType::kDropJob, drop);
  ASSERT_TRUE(dropped.ok());
  EXPECT_TRUE(dropped->status.ok());
  EXPECT_EQ(server.segments_stored(), 0u);
  EXPECT_GE(server.requests_served(), 5u);
  server.Stop();
}

// --- transports -----------------------------------------------------------

TEST(InprocTransportTest, PublishFetchDropJob) {
  InprocTransport transport;
  NetCallStats stats;
  ShuffleSegmentKey key{"job", 1, 2};
  ASSERT_TRUE(transport.Publish(key, "bytes", &stats).ok());
  auto fetched = transport.Fetch(key, &stats);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, "bytes");
  // Unknown key and dropped job both read back as Unavailable.
  EXPECT_EQ(transport.Fetch({"job", 9, 9}, &stats).status().code(),
            StatusCode::kUnavailable);
  transport.DropJob("job");
  EXPECT_FALSE(transport.Fetch(key, &stats).ok());
  EXPECT_EQ(transport.worker_losses(), 0u);
}

SocketTransportOptions FastClientOptions() {
  SocketTransportOptions options;
  options.connect_timeout_ms = 500;
  options.io_timeout_ms = 300;
  options.max_attempts_per_op = 6;
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 8;
  options.heartbeat_interval_ms = 0;  // liveness tested separately
  return options;
}

TEST(SocketTransportTest, PublishFetchAcrossWorkers) {
  auto pool = WorkerPool::StartInProcess(3, NetFaultPlan{});
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  auto transport =
      MakeSocketTransport((*pool)->ports(), nullptr, FastClientOptions());
  NetCallStats stats;
  for (uint64_t m = 0; m < 6; ++m) {
    ShuffleSegmentKey key{"job", m, 0};
    ASSERT_TRUE(
        transport->Publish(key, "seg" + std::to_string(m), &stats).ok());
  }
  for (uint64_t m = 0; m < 6; ++m) {
    auto fetched = transport->Fetch({"job", m, 0}, &stats);
    ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
    EXPECT_EQ(*fetched, "seg" + std::to_string(m));
  }
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_GT(stats.bytes_received, 0u);
  // Ring placement: segments land spread over the workers.
  uint64_t stored = 0;
  for (size_t i = 0; i < (*pool)->size(); ++i) {
    EXPECT_GT((*pool)->server(i)->segments_stored(), 0u);
    stored += (*pool)->server(i)->segments_stored();
  }
  EXPECT_EQ(stored, 6u);
  // A key nobody published is a definitive Unavailable, not a retry storm.
  NetCallStats miss_stats;
  EXPECT_EQ(transport->Fetch({"job", 99, 0}, &miss_stats).status().code(),
            StatusCode::kUnavailable);
  transport->DropJob("job");
  EXPECT_FALSE(transport->Fetch({"job", 0, 0}, &stats).ok());
}

TEST(SocketTransportTest, RecoversFromEveryServerFaultKind) {
  struct Case {
    const char* name;
    NetFaultPlan plan;
  };
  std::vector<Case> cases;
  {
    Case drop{"drop", {}};
    drop.plan.seed = 11;
    drop.plan.drop_probability = 1.0;
    cases.push_back(drop);
    Case truncate{"truncate", {}};
    truncate.plan.seed = 12;
    truncate.plan.truncate_probability = 1.0;
    cases.push_back(truncate);
    Case corrupt{"corrupt", {}};
    corrupt.plan.seed = 13;
    corrupt.plan.corrupt_probability = 1.0;
    cases.push_back(corrupt);
    Case stall{"stall", {}};
    stall.plan.seed = 14;
    stall.plan.stall_probability = 1.0;
    stall.plan.stall_ms = 800;  // > io_timeout_ms: the client must time out
    cases.push_back(stall);
    Case delay{"delay", {}};
    delay.plan.seed = 15;
    delay.plan.delay_probability = 1.0;
    delay.plan.delay_ms = 10;
    cases.push_back(delay);
  }
  for (auto& c : cases) {
    c.plan.fault_attempts = 2;  // attempts 0 and 1 fault; attempt 2 is clean
    auto pool = WorkerPool::StartInProcess(2, c.plan);
    ASSERT_TRUE(pool.ok()) << c.name;
    auto transport =
        MakeSocketTransport((*pool)->ports(), nullptr, FastClientOptions());
    NetCallStats stats;
    ShuffleSegmentKey key{"job", 0, 0};
    ASSERT_TRUE(transport->Publish(key, "payload", &stats).ok()) << c.name;
    auto fetched = transport->Fetch(key, &stats);
    ASSERT_TRUE(fetched.ok()) << c.name << ": " << fetched.status().ToString();
    EXPECT_EQ(*fetched, "payload") << c.name;
    if (std::string(c.name) != "delay") {
      EXPECT_GT(stats.retries, 0u) << c.name;
      EXPECT_GT((*pool)->server(0)->faults_injected() +
                    (*pool)->server(1)->faults_injected(),
                0u)
          << c.name;
    }
    if (std::string(c.name) == "corrupt") {
      // The flipped byte was caught at the frame boundary, not passed on.
      EXPECT_GT(stats.corrupt_frames, 0u);
    }
  }
}

TEST(SocketTransportTest, ClientSideRefuseConnectRetries) {
  NetFaultPlan server_plan;  // servers stay clean
  auto pool = WorkerPool::StartInProcess(2, server_plan);
  ASSERT_TRUE(pool.ok());
  auto client_plan = std::make_shared<const NetFaultPlan>([] {
    NetFaultPlan plan;
    plan.seed = 21;
    plan.refuse_connect_probability = 1.0;
    plan.fault_attempts = 2;
    return plan;
  }());
  auto transport = MakeSocketTransport((*pool)->ports(), client_plan,
                                       FastClientOptions());
  NetCallStats stats;
  ShuffleSegmentKey key{"job", 1, 1};
  ASSERT_TRUE(transport->Publish(key, "x", &stats).ok());
  EXPECT_GT(stats.retries, 0u);
  auto fetched = transport->Fetch(key, &stats);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_EQ(*fetched, "x");
}

TEST(SocketTransportTest, PermanentFaultExhaustsRetryBudget) {
  NetFaultPlan plan;
  plan.seed = 31;
  plan.drop_probability = 1.0;
  plan.fault_attempts = 1000;  // never recovers within any budget
  auto pool = WorkerPool::StartInProcess(1, plan);
  ASSERT_TRUE(pool.ok());
  auto options = FastClientOptions();
  options.max_attempts_per_op = 3;
  auto transport = MakeSocketTransport((*pool)->ports(), nullptr, options);
  NetCallStats stats;
  EXPECT_FALSE(transport->Publish({"job", 0, 0}, "x", &stats).ok());
  EXPECT_GE(stats.retries, 2u);
  EXPECT_GE(transport->worker_losses(), 1u);
}

TEST(SocketTransportTest, KilledWorkerIsLostAndRepublishReroutes) {
  auto pool = WorkerPool::StartInProcess(2, NetFaultPlan{});
  ASSERT_TRUE(pool.ok());
  auto options = FastClientOptions();
  options.max_attempts_per_op = 2;
  auto transport = MakeSocketTransport((*pool)->ports(), nullptr, options);
  NetCallStats stats;
  ShuffleSegmentKey key{"job", 0, 0};  // ring home: worker 0
  ASSERT_TRUE(transport->Publish(key, "payload", &stats).ok());
  ASSERT_EQ((*pool)->server(0)->segments_stored(), 1u);

  (*pool)->KillWorker(0);
  EXPECT_FALSE(transport->Fetch(key, &stats).ok());
  EXPECT_GE(transport->worker_losses(), 1u);

  // The engine's recovery path re-publishes the deterministic bytes; the
  // ring skips the lost worker and the fetch lands on the survivor.
  ASSERT_TRUE(transport->Publish(key, "payload", &stats).ok());
  EXPECT_EQ((*pool)->server(1)->segments_stored(), 1u);
  auto fetched = transport->Fetch(key, &stats);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_EQ(*fetched, "payload");
}

TEST(SocketTransportTest, HeartbeatDeclaresDeadWorkerLost) {
  auto pool = WorkerPool::StartInProcess(2, NetFaultPlan{});
  ASSERT_TRUE(pool.ok());
  auto options = FastClientOptions();
  options.heartbeat_interval_ms = 20;
  options.heartbeat_misses_to_loss = 2;
  auto transport = MakeSocketTransport((*pool)->ports(), nullptr, options);
  (*pool)->KillWorker(1);
  // The heartbeat needs a couple of intervals to accumulate misses.
  for (int i = 0; i < 100 && transport->worker_losses() == 0; ++i) {
    usleep(20 * 1000);
  }
  EXPECT_GE(transport->worker_losses(), 1u);
}

// --- the job engine over transports ---------------------------------------

using K = std::string;
using V = uint64_t;

std::vector<std::string> WordLines() {
  std::vector<std::string> lines;
  for (int i = 0; i < 120; ++i) {
    lines.push_back("w" + std::to_string(i % 17) + " w" +
                    std::to_string(i % 5) + " w" + std::to_string(i % 3));
  }
  return lines;
}

JobSpec<K, V> WordCountSpec(const std::string& in, const std::string& out) {
  JobSpec<K, V> spec;
  spec.name = "net-wordcount";
  spec.input_files = {in};
  spec.output_file = out;
  spec.num_map_tasks = 5;
  spec.num_reduce_tasks = 3;
  spec.mapper_factory = [] {
    return std::make_unique<LambdaMapper<K, V>>(
        [](const InputRecord& record, Emitter<K, V>* out, TaskContext*) {
          for (const auto& w : Split(*record.line, ' ')) {
            if (!w.empty()) out->Emit(w, 1);
          }
        });
  };
  spec.reducer_factory = [] {
    return std::make_unique<LambdaReducer<K, V>>(
        [](const K& key, std::span<const std::pair<K, V>> group,
           OutputEmitter* out, TaskContext*) {
          uint64_t total = 0;
          for (const auto& [k, v] : group) total += v;
          out->Emit(key + "\t" + std::to_string(total));
        });
  };
  return spec;
}

JobMetrics RunOrDie(Dfs* dfs, JobSpec<K, V> spec) {
  Job<K, V> job(dfs, std::move(spec));
  auto metrics = job.Run();
  EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
  return metrics.ok() ? *metrics : JobMetrics{};
}

const std::vector<std::string>& Output(const Dfs& dfs,
                                       const std::string& file) {
  auto lines = dfs.ReadFile(file);
  EXPECT_TRUE(lines.ok());
  return *lines.value();
}

TEST(JobTransportTest, InprocTransportMatchesDirectHandOff) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", WordLines()).ok());

  for (RecordFormat format : {RecordFormat::kText, RecordFormat::kBinary}) {
    // Committed counters depend on the record format (binary meters
    // encoded bytes), so the direct baseline uses the same format.
    const std::string tag =
        format == RecordFormat::kBinary ? "bin" : "text";
    auto direct_spec = WordCountSpec("in", "direct-" + tag);
    direct_spec.record_format = format;
    auto direct = RunOrDie(&dfs, std::move(direct_spec));
    EXPECT_EQ(direct.net_fetches, 0u);

    const std::string out = "inproc-" + tag;
    auto spec = WordCountSpec("in", out);
    spec.record_format = format;
    spec.transport = std::make_shared<InprocTransport>();
    auto routed = RunOrDie(&dfs, std::move(spec));
    EXPECT_EQ(Output(dfs, "direct-" + tag), Output(dfs, out));
    EXPECT_GT(routed.net_segments, 0u);
    EXPECT_EQ(routed.net_fetches, routed.net_segments);
    EXPECT_GT(routed.net_bytes_pushed, 0u);
    EXPECT_GT(routed.net_bytes_fetched, 0u);
    EXPECT_EQ(routed.net_map_reruns, 0u);
    EXPECT_EQ(routed.net_fetch_latency.count(), routed.net_fetches);
    // The committed data-path counters are transport-invariant.
    EXPECT_EQ(routed.shuffle_bytes, direct.shuffle_bytes);
    EXPECT_EQ(routed.shuffle_records, direct.shuffle_records);
    EXPECT_EQ(routed.map_output_records, direct.map_output_records);
  }
}

TEST(JobTransportTest, SocketTransportMatchesDirectHandOff) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", WordLines()).ok());
  auto direct = RunOrDie(&dfs, WordCountSpec("in", "direct"));

  auto pool = WorkerPool::StartInProcess(2, NetFaultPlan{});
  ASSERT_TRUE(pool.ok());
  auto transport = std::shared_ptr<ShuffleTransport>(
      MakeSocketTransport((*pool)->ports(), nullptr, FastClientOptions()));
  auto spec = WordCountSpec("in", "socket");
  spec.transport = transport;
  spec.local_threads = 4;
  auto routed = RunOrDie(&dfs, std::move(spec));
  EXPECT_EQ(Output(dfs, "direct"), Output(dfs, "socket"));
  EXPECT_GT(routed.net_fetches, 0u);
  EXPECT_EQ(routed.net_worker_losses, 0u);
  // The engine dropped the job's segments from the workers when it
  // finished.
  EXPECT_EQ((*pool)->server(0)->segments_stored(), 0u);
  EXPECT_EQ((*pool)->server(1)->segments_stored(), 0u);
}

TEST(JobTransportTest, WireCorruptionIsDetectedAndRetried) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", WordLines()).ok());
  auto direct = RunOrDie(&dfs, WordCountSpec("in", "direct"));

  NetFaultPlan plan;
  plan.seed = 41;
  plan.corrupt_probability = 0.5;
  plan.drop_probability = 0.2;
  plan.fault_attempts = 2;
  auto pool = WorkerPool::StartInProcess(2, plan);
  ASSERT_TRUE(pool.ok());
  auto spec = WordCountSpec("in", "chaos");
  spec.transport = MakeSocketTransport((*pool)->ports(), nullptr,
                                       FastClientOptions());
  spec.local_threads = 4;
  auto routed = RunOrDie(&dfs, std::move(spec));
  EXPECT_EQ(Output(dfs, "direct"), Output(dfs, "chaos"));
  EXPECT_GT(routed.net_fetch_retries, 0u);
  EXPECT_GT(routed.net_corruption_detected, 0u);
  EXPECT_EQ(routed.net_map_reruns, 0u);  // transport retries absorbed it all
}

// A transport wrapper that makes the first `fail_per_key` Fetch calls for
// every key fail — the deterministic trigger for the engine's escalation
// ladder (the real transport only degrades like this when workers die).
class FlakyFetchTransport : public ShuffleTransport {
 public:
  FlakyFetchTransport(std::shared_ptr<ShuffleTransport> inner,
                      int fail_per_key)
      : inner_(std::move(inner)), fail_per_key_(fail_per_key) {}

  const char* name() const override { return "flaky"; }

  Status Publish(const ShuffleSegmentKey& key, std::string segment,
                 NetCallStats* stats) override {
    return inner_->Publish(key, std::move(segment), stats);
  }

  Result<std::string> Fetch(const ShuffleSegmentKey& key,
                            NetCallStats* stats) override {
    {
      MutexLock lock(&mu_);
      int& failures =
          failures_[{key.job, key.map_task, key.partition}];
      if (failures < fail_per_key_) {
        ++failures;
        ++total_failures_;
        return Status::Unavailable("injected fetch failure");
      }
    }
    return inner_->Fetch(key, stats);
  }

  void DropJob(const std::string& job) override { inner_->DropJob(job); }

  uint64_t total_failures() const {
    MutexLock lock(&mu_);
    return total_failures_;
  }

 private:
  std::shared_ptr<ShuffleTransport> inner_;
  const int fail_per_key_;
  mutable Mutex mu_{"test.flaky_transport"};
  std::map<std::tuple<std::string, uint64_t, uint64_t>, int> failures_
      FJ_GUARDED_BY(mu_);
  uint64_t total_failures_ FJ_GUARDED_BY(mu_) = 0;
};

TEST(JobTransportTest, Rung2ServesUnfetchableSegmentFromLocalSpill) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", WordLines()).ok());
  auto direct = RunOrDie(&dfs, WordCountSpec("in", "direct"));

  auto flaky = std::make_shared<FlakyFetchTransport>(
      std::make_shared<InprocTransport>(), /*fail_per_key=*/1000);
  auto spec = WordCountSpec("in", "rung2");
  spec.transport = flaky;
  spec.net_fetch_local_fallback = true;
  auto routed = RunOrDie(&dfs, std::move(spec));
  EXPECT_EQ(Output(dfs, "direct"), Output(dfs, "rung2"));
  EXPECT_GT(routed.net_redundant_fetches, 0u);
  EXPECT_EQ(routed.net_map_reruns, 0u);  // rung 2 already recovered
}

TEST(JobTransportTest, Rung3RerunsMapTaskWhenFallbackDisabled) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", WordLines()).ok());
  auto direct = RunOrDie(&dfs, WordCountSpec("in", "direct"));

  auto flaky = std::make_shared<FlakyFetchTransport>(
      std::make_shared<InprocTransport>(), /*fail_per_key=*/1);
  auto spec = WordCountSpec("in", "rung3");
  spec.transport = flaky;
  spec.net_fetch_local_fallback = false;
  auto routed = RunOrDie(&dfs, std::move(spec));
  EXPECT_EQ(Output(dfs, "direct"), Output(dfs, "rung3"));
  EXPECT_GT(routed.net_map_reruns, 0u);
  EXPECT_EQ(routed.net_redundant_fetches, 0u);
  EXPECT_GT(flaky->total_failures(), 0u);
}

TEST(JobTransportTest, UnrecoverableFetchFailsTheJobCleanly) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", WordLines()).ok());
  auto flaky = std::make_shared<FlakyFetchTransport>(
      std::make_shared<InprocTransport>(), /*fail_per_key=*/1000000);
  auto spec = WordCountSpec("in", "doomed");
  spec.transport = flaky;
  spec.net_fetch_local_fallback = false;
  Job<K, V> job(&dfs, std::move(spec));
  auto metrics = job.Run();
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace fj::mr
