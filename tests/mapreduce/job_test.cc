// Engine contract tests: wordcount, combiner semantics and traffic
// accounting, custom partition/sort/group comparators (the secondary-sort
// pattern stage 2 relies on), multi-file inputs, setup/teardown hooks, and
// determinism.
#include "mapreduce/job.h"

#include <algorithm>
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/string_util.h"
#include "mapreduce/dfs.h"

namespace fj::mr {
namespace {

using K = std::string;
using V = uint64_t;

// Splits each line into words and emits (word, 1).
class WordCountMapper : public Mapper<K, V> {
 public:
  void Map(const InputRecord& record, Emitter<K, V>* out,
           TaskContext*) override {
    for (const auto& w : Split(*record.line, ' ')) {
      if (!w.empty()) out->Emit(w, 1);
    }
  }
};

class SumReducer : public Reducer<K, V> {
 public:
  void Reduce(const K& key, std::span<const std::pair<K, V>> group,
              OutputEmitter* out, TaskContext*) override {
    uint64_t total = 0;
    for (const auto& [k, v] : group) total += v;
    out->Emit(key + "\t" + std::to_string(total));
  }
};

JobSpec<K, V> WordCountSpec(const std::string& in, const std::string& out) {
  JobSpec<K, V> spec;
  spec.name = "wordcount";
  spec.input_files = {in};
  spec.output_file = out;
  spec.num_map_tasks = 3;
  spec.num_reduce_tasks = 2;
  spec.mapper_factory = [] { return std::make_unique<WordCountMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  return spec;
}

std::map<std::string, uint64_t> ParseCounts(const Dfs& dfs,
                                            const std::string& file) {
  std::map<std::string, uint64_t> counts;
  auto lines = dfs.ReadFile(file);
  EXPECT_TRUE(lines.ok());
  for (const auto& line : *lines.value()) {
    auto fields = Split(line, '\t');
    EXPECT_EQ(fields.size(), 2u) << line;
    counts[fields[0]] = *ParseUint64(fields[1]);
  }
  return counts;
}

TEST(JobTest, WordCountProducesExactCounts) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"a b a", "b c", "a", "", "c c c"}).ok());
  Job<K, V> job(&dfs, WordCountSpec("in", "out"));
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  auto counts = ParseCounts(dfs, "out");
  EXPECT_EQ(counts["a"], 3u);
  EXPECT_EQ(counts["b"], 2u);
  EXPECT_EQ(counts["c"], 4u);
  EXPECT_EQ(counts.size(), 3u);
}

TEST(JobTest, MetricsCountRecordsAndTasks) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"a b", "c d", "e f", "g h"}).ok());
  Job<K, V> job(&dfs, WordCountSpec("in", "out"));
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->map_tasks.size(), 3u);  // requested 3 map tasks
  EXPECT_EQ(metrics->reduce_tasks.size(), 2u);
  uint64_t map_inputs = 0;
  for (const auto& t : metrics->map_tasks) map_inputs += t.input_records;
  EXPECT_EQ(map_inputs, 4u);
  EXPECT_EQ(metrics->map_output_records, 8u);  // 8 words emitted
  EXPECT_GT(metrics->shuffle_bytes, 0u);
}

TEST(JobTest, CombinerReducesShuffleTrafficButNotResults) {
  Dfs dfs;
  std::vector<std::string> lines(50, "x x x x y");
  ASSERT_TRUE(dfs.WriteFile("in", lines).ok());

  auto no_combiner = WordCountSpec("in", "out1");
  Job<K, V> job1(&dfs, no_combiner);
  auto m1 = job1.Run();
  ASSERT_TRUE(m1.ok());

  auto with_combiner = WordCountSpec("in", "out2");
  with_combiner.combiner = [](const K& key, std::vector<V>&& values,
                              Emitter<K, V>* out) {
    uint64_t total = 0;
    for (V v : values) total += v;
    out->Emit(key, total);
  };
  Job<K, V> job2(&dfs, with_combiner);
  auto m2 = job2.Run();
  ASSERT_TRUE(m2.ok());

  EXPECT_EQ(ParseCounts(dfs, "out1"), ParseCounts(dfs, "out2"));
  EXPECT_LT(m2->shuffle_records, m1->shuffle_records);
  EXPECT_LT(m2->shuffle_bytes, m1->shuffle_bytes);
  // Pre-combine map output is identical.
  EXPECT_EQ(m2->map_output_records, m1->map_output_records);
  // 3 map tasks x at most 2 distinct words per partition set.
  EXPECT_LE(m2->shuffle_records, 3u * 2u);
  // Combined output is metered per task: what crosses the shuffle never
  // exceeds what the mapper emitted, and the totals are task sums.
  uint64_t task_shuffle = 0, task_output = 0;
  for (const auto& t : m2->map_tasks) {
    EXPECT_LE(t.shuffle_records, t.output_records);
    EXPECT_LE(t.shuffle_bytes, t.output_bytes);
    task_shuffle += t.shuffle_records;
    task_output += t.output_records;
  }
  EXPECT_EQ(task_shuffle, m2->shuffle_records);
  EXPECT_EQ(task_output, m2->map_output_records);
  EXPECT_LE(m2->shuffle_records, m2->map_output_records);
}

// Secondary sort: partition on the first key field, sort on both, group on
// the first — the reducer must see one group per first-field value with
// second fields ascending. This is exactly the stage-2 PK pattern.
TEST(JobTest, SecondarySortGroupsByPrimaryAndSortsBySecondary) {
  using K2 = std::pair<std::string, uint64_t>;
  Dfs dfs;
  ASSERT_TRUE(
      dfs.WriteFile("in", {"b 3", "a 2", "b 1", "a 9", "b 2", "a 1"}).ok());

  JobSpec<K2, uint64_t> spec;
  spec.name = "secondary-sort";
  spec.input_files = {"in"};
  spec.output_file = "out";
  spec.num_map_tasks = 2;
  spec.num_reduce_tasks = 3;
  spec.mapper_factory = [] {
    return std::make_unique<LambdaMapper<K2, uint64_t>>(
        [](const InputRecord& record, Emitter<K2, uint64_t>* out,
           TaskContext*) {
          auto fields = Split(*record.line, ' ');
          out->Emit(K2(fields[0], *ParseUint64(fields[1])), 0);
        });
  };
  spec.partitioner = [](const K2& key, size_t partitions) {
    return HashString(key.first) % partitions;
  };
  spec.group_equal = [](const K2& a, const K2& b) {
    return a.first == b.first;
  };
  spec.reducer_factory = [] {
    return std::make_unique<LambdaReducer<K2, uint64_t>>(
        [](const K2& key, std::span<const std::pair<K2, uint64_t>> group,
           OutputEmitter* out, TaskContext*) {
          std::string line = key.first + ":";
          for (const auto& [k, v] : group) {
            line += ' ';
            line += std::to_string(k.second);
          }
          out->Emit(line);
        });
  };
  Job<K2, uint64_t> job(&dfs, std::move(spec));
  ASSERT_TRUE(job.Run().ok());

  auto lines = dfs.ReadFile("out");
  ASSERT_TRUE(lines.ok());
  std::map<std::string, std::string> by_key;
  for (const auto& line : *lines.value()) {
    by_key[line.substr(0, 1)] = line;
  }
  EXPECT_EQ(by_key["a"], "a: 1 2 9");
  EXPECT_EQ(by_key["b"], "b: 1 2 3");
  EXPECT_EQ(by_key.size(), 2u);  // one reduce call per primary key
}

// Mappers can distinguish their input file — the stage-3 BRJ requirement.
TEST(JobTest, MultiInputMapperSeesFileIndex) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("left", {"l1", "l2"}).ok());
  ASSERT_TRUE(dfs.WriteFile("right", {"r1"}).ok());

  JobSpec<K, V> spec;
  spec.name = "multi-input";
  spec.input_files = {"left", "right"};
  spec.output_file = "out";
  spec.num_reduce_tasks = 1;
  spec.mapper_factory = [] {
    return std::make_unique<LambdaMapper<K, V>>(
        [](const InputRecord& record, Emitter<K, V>* out, TaskContext*) {
          out->Emit(*record.line + "@" + std::to_string(record.file_index),
                    1);
        });
  };
  spec.reducer_factory = [] {
    return std::make_unique<LambdaReducer<K, V>>(
        [](const K& key, std::span<const std::pair<K, V>>, OutputEmitter* out,
           TaskContext*) { out->Emit(key); });
  };
  Job<K, V> job(&dfs, std::move(spec));
  ASSERT_TRUE(job.Run().ok());

  auto lines = dfs.ReadFile("out");
  ASSERT_TRUE(lines.ok());
  std::vector<std::string> sorted = *lines.value();
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted,
            (std::vector<std::string>{"l1@0", "l2@0", "r1@1"}));
}

// Teardown can emit (OPTO emits its entire output there).
TEST(JobTest, MapperAndReducerTeardownRun) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"x"}).ok());

  class TeardownMapper : public Mapper<K, V> {
   public:
    void Map(const InputRecord&, Emitter<K, V>*, TaskContext*) override {}
    void Teardown(Emitter<K, V>* out, TaskContext*) override {
      out->Emit("from-teardown", 7);
    }
  };
  class TeardownReducer : public Reducer<K, V> {
   public:
    void Reduce(const K& key, std::span<const std::pair<K, V>>,
                OutputEmitter*, TaskContext*) override {
      seen_.push_back(key);
    }
    void Teardown(OutputEmitter* out, TaskContext*) override {
      for (const auto& k : seen_) out->Emit("teardown:" + k);
    }

   private:
    std::vector<std::string> seen_;
  };

  JobSpec<K, V> spec;
  spec.name = "teardown";
  spec.input_files = {"in"};
  spec.output_file = "out";
  spec.num_reduce_tasks = 1;
  spec.mapper_factory = [] { return std::make_unique<TeardownMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<TeardownReducer>(); };
  Job<K, V> job(&dfs, std::move(spec));
  ASSERT_TRUE(job.Run().ok());

  auto lines = dfs.ReadFile("out");
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(*lines.value(),
            (std::vector<std::string>{"teardown:from-teardown"}));
}

TEST(JobTest, RepeatedRunsProduceIdenticalOutput) {
  Dfs dfs;
  std::vector<std::string> lines;
  for (int i = 0; i < 100; ++i) {
    std::string line = "w";
    line += std::to_string(i % 17);
    line += " w";
    line += std::to_string(i % 5);
    lines.push_back(std::move(line));
  }
  ASSERT_TRUE(dfs.WriteFile("in", lines).ok());
  Job<K, V> job1(&dfs, WordCountSpec("in", "out1"));
  ASSERT_TRUE(job1.Run().ok());
  Job<K, V> job2(&dfs, WordCountSpec("in", "out2"));
  ASSERT_TRUE(job2.Run().ok());
  EXPECT_EQ(*dfs.ReadFile("out1").value(), *dfs.ReadFile("out2").value());
}

TEST(JobTest, MissingInputFileFails) {
  Dfs dfs;
  Job<K, V> job(&dfs, WordCountSpec("nope", "out"));
  auto metrics = job.Run();
  EXPECT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kNotFound);
}

TEST(JobTest, InvalidSpecRejected) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"x"}).ok());
  auto spec = WordCountSpec("in", "out");
  spec.num_reduce_tasks = 0;
  Job<K, V> job(&dfs, std::move(spec));
  EXPECT_EQ(job.Run().status().code(), StatusCode::kInvalidArgument);
}

TEST(JobTest, EmptyCharge) {
  // ChargeSeconds adds simulated cost to a task's metered time.
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"x"}).ok());
  auto spec = WordCountSpec("in", "out");
  spec.num_map_tasks = 1;
  spec.mapper_factory = [] {
    return std::make_unique<LambdaMapper<K, V>>(
        [](const InputRecord&, Emitter<K, V>*, TaskContext* ctx) {
          ctx->ChargeSeconds(5.0);
        });
  };
  Job<K, V> job(&dfs, std::move(spec));
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->map_tasks.size(), 1u);
  EXPECT_GE(metrics->map_tasks[0].seconds, 5.0);
}

}  // namespace
}  // namespace fj::mr
