// Data-integrity contract tests for the engine: CorruptRecord faults are
// detected at the checksum boundaries when JobSpec::verify_integrity is
// on, converted into transient task failures, and retried to a
// byte-identical result; with verification off the corruption flows
// through silently (the failure mode the layer exists to prevent);
// corrupted *inputs* fail the job up front with DataLoss; malformed input
// lines are quarantined to "<output>.bad" under max_skipped_records; and
// output commits are atomic (no partial file, no leaked temp).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/string_util.h"
#include "mapreduce/dfs.h"
#include "mapreduce/fault.h"
#include "mapreduce/job.h"

namespace fj::mr {
namespace {

using K = std::string;
using V = uint64_t;

class WordCountMapper : public Mapper<K, V> {
 public:
  void Map(const InputRecord& record, Emitter<K, V>* out,
           TaskContext* ctx) override {
    ctx->counters().Add("mapper.lines", 1);
    for (const auto& w : Split(*record.line, ' ')) {
      if (!w.empty()) out->Emit(w, 1);
    }
  }
};

// Quarantines lines starting with '!' as malformed, counts the rest.
class PickyMapper : public Mapper<K, V> {
 public:
  void Map(const InputRecord& record, Emitter<K, V>* out,
           TaskContext* ctx) override {
    if (!record.line->empty() && (*record.line)[0] == '!') {
      ctx->QuarantineRecord(*record.line);
      return;
    }
    for (const auto& w : Split(*record.line, ' ')) {
      if (!w.empty()) out->Emit(w, 1);
    }
  }
};

class SumReducer : public Reducer<K, V> {
 public:
  void Reduce(const K& key, std::span<const std::pair<K, V>> group,
              OutputEmitter* out, TaskContext* ctx) override {
    ctx->counters().Add("reducer.groups", 1);
    uint64_t total = 0;
    for (const auto& [k, v] : group) total += v;
    out->Emit(key + "\t" + std::to_string(total));
  }
};

JobSpec<K, V> WordCountSpec(const std::string& in, const std::string& out) {
  JobSpec<K, V> spec;
  spec.name = "wordcount";
  spec.input_files = {in};
  spec.output_file = out;
  spec.num_map_tasks = 3;
  spec.num_reduce_tasks = 3;
  spec.mapper_factory = [] { return std::make_unique<WordCountMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  return spec;
}

void WriteInput(Dfs* dfs) {
  ASSERT_TRUE(
      dfs->WriteFile("in", {"a b a", "b c", "a d e", "f g", "c c c", "h a b"})
          .ok());
}

std::vector<std::string> OutputLines(const Dfs& dfs, const std::string& file) {
  auto lines = dfs.ReadFile(file);
  EXPECT_TRUE(lines.ok()) << lines.status().ToString();
  return lines.ok() ? *lines.value() : std::vector<std::string>{};
}

struct Baseline {
  std::vector<std::string> output;
  std::map<std::string, int64_t> counters;
};

Baseline RunBaseline() {
  Dfs dfs;
  WriteInput(&dfs);
  Job<K, V> job(&dfs, WordCountSpec("in", "out"));
  auto metrics = job.Run();
  EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
  return Baseline{OutputLines(dfs, "out"), metrics->counters.Snapshot()};
}

std::shared_ptr<FaultPlan> CorruptPlan(TaskPhase phase, size_t task,
                                       CorruptTarget target,
                                       uint32_t failing_attempts = 1) {
  auto plan = std::make_shared<FaultPlan>();
  plan->faults.push_back(FaultSpec{.phase = phase,
                                   .task_id = task,
                                   .first_attempt = 0,
                                   .failing_attempts = failing_attempts,
                                   .corrupt_target = target,
                                   .corrupt_salt = 7});
  return plan;
}

TEST(IntegrityTest, MapOutputCorruptionDetectedAndRetriedToIdenticalResult) {
  Baseline baseline = RunBaseline();

  Dfs dfs;
  WriteInput(&dfs);
  auto spec = WordCountSpec("in", "out");
  spec.verify_integrity = true;
  spec.fault_plan = CorruptPlan(TaskPhase::kMap, 1, CorruptTarget::kMapOutput);
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  EXPECT_EQ(OutputLines(dfs, "out"), baseline.output);
  // The corrupted attempt was caught at map commit and re-run.
  EXPECT_EQ(metrics->map_tasks[1].attempts, 2u);
  EXPECT_EQ(metrics->map_tasks[1].failed_attempts, 1u);
  EXPECT_EQ(metrics->map_tasks[1].corruption_detected, 1u);
  EXPECT_EQ(metrics->corruption_detected, 1u);
  EXPECT_GT(metrics->integrity_bytes_verified, 0u);
  auto counters = metrics->counters.Snapshot();
  EXPECT_EQ(counters["integrity.corruption_detected"], 1);
  EXPECT_GT(counters["integrity.bytes_verified"], 0);
}

TEST(IntegrityTest, SpillCorruptionDetectedAndRetriedToIdenticalResult) {
  Baseline baseline = RunBaseline();

  Dfs dfs;
  WriteInput(&dfs);
  auto spec = WordCountSpec("in", "out");
  spec.verify_integrity = true;
  spec.sort_buffer_bytes = 64;  // force map-side spills
  spec.fault_plan = CorruptPlan(TaskPhase::kMap, 0, CorruptTarget::kSpill);
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  EXPECT_EQ(OutputLines(dfs, "out"), baseline.output);
  EXPECT_GE(metrics->map_tasks[0].attempts, 2u);
  EXPECT_GE(metrics->corruption_detected, 1u);
}

TEST(IntegrityTest, ReduceOutputCorruptionDetectedAndRetried) {
  Baseline baseline = RunBaseline();

  Dfs dfs;
  WriteInput(&dfs);
  auto spec = WordCountSpec("in", "out");
  spec.verify_integrity = true;
  spec.fault_plan =
      CorruptPlan(TaskPhase::kReduce, 0, CorruptTarget::kReduceOutput);
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  EXPECT_EQ(OutputLines(dfs, "out"), baseline.output);
  EXPECT_EQ(metrics->reduce_tasks[0].attempts, 2u);
  EXPECT_EQ(metrics->reduce_tasks[0].corruption_detected, 1u);
}

TEST(IntegrityTest, VerificationOffLetsCorruptionThroughSilently) {
  Baseline baseline = RunBaseline();

  Dfs dfs;
  WriteInput(&dfs);
  auto spec = WordCountSpec("in", "out");
  ASSERT_FALSE(spec.verify_integrity);
  spec.fault_plan = CorruptPlan(TaskPhase::kMap, 1, CorruptTarget::kMapOutput);
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  // The job "succeeds" — one attempt each, nothing detected — but the
  // output is WRONG. This is exactly what verify_integrity prevents.
  EXPECT_NE(OutputLines(dfs, "out"), baseline.output);
  EXPECT_EQ(metrics->map_tasks[1].attempts, 1u);
  EXPECT_EQ(metrics->corruption_detected, 0u);
}

TEST(IntegrityTest, PermanentCorruptionFailsStructuredWithNoOutput) {
  Dfs dfs;
  WriteInput(&dfs);
  auto spec = WordCountSpec("in", "out");
  spec.verify_integrity = true;
  spec.max_task_attempts = 3;
  spec.fault_plan = CorruptPlan(TaskPhase::kMap, 1, CorruptTarget::kMapOutput,
                                FaultSpec::kAllAttempts);
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kInternal);
  // Atomic commit: neither the output nor its temp file exists.
  EXPECT_FALSE(dfs.Exists("out"));
  EXPECT_FALSE(dfs.Exists("out.__commit"));
}

TEST(IntegrityTest, CorruptedInputFailsUpFrontWithDataLoss) {
  Dfs dfs;
  WriteInput(&dfs);
  ASSERT_TRUE(dfs.CorruptByteForTest("in", 3).ok());
  auto spec = WordCountSpec("in", "out");
  spec.verify_integrity = true;
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kDataLoss);
  EXPECT_FALSE(dfs.Exists("out"));

  // Without verification the same job reads the corrupted bytes happily.
  Dfs dfs2;
  WriteInput(&dfs2);
  ASSERT_TRUE(dfs2.CorruptByteForTest("in", 3).ok());
  Job<K, V> job2(&dfs2, WordCountSpec("in", "out"));
  EXPECT_TRUE(job2.Run().ok());
}

TEST(IntegrityTest, ProbabilisticCorruptionRecoversWithVerificationOn) {
  Baseline baseline = RunBaseline();

  Dfs dfs;
  WriteInput(&dfs);
  auto plan = std::make_shared<FaultPlan>();
  plan->seed = 29;
  plan->corrupt_probability = 0.5;
  plan->corrupt_failing_attempts = 2;
  auto spec = WordCountSpec("in", "out");
  spec.verify_integrity = true;
  ASSERT_TRUE(plan->RecoverableWith(spec.max_task_attempts, true));
  spec.fault_plan = plan;
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(OutputLines(dfs, "out"), baseline.output);
  EXPECT_GT(metrics->corruption_detected, 0u);
}

TEST(IntegrityTest, QuarantinedLinesLandInBadFileNotOutput) {
  Dfs dfs;
  ASSERT_TRUE(
      dfs.WriteFile("in", {"a b", "!broken 1", "b c", "!broken 2", "a"}).ok());
  auto spec = WordCountSpec("in", "out");
  spec.mapper_factory = [] { return std::make_unique<PickyMapper>(); };
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  EXPECT_EQ(metrics->records_skipped, 2u);
  EXPECT_EQ(metrics->counters.Snapshot()["records_skipped"], 2);
  auto bad = dfs.ReadFile("out.bad");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(*bad.value(),
            (std::vector<std::string>{"!broken 1", "!broken 2"}));
  // The good lines were still counted normally.
  for (const std::string& line : OutputLines(dfs, "out")) {
    EXPECT_EQ(line.find('!'), std::string::npos) << line;
  }
}

TEST(IntegrityTest, NoBadFileWhenNothingWasQuarantined) {
  Dfs dfs;
  WriteInput(&dfs);
  Job<K, V> job(&dfs, WordCountSpec("in", "out"));
  ASSERT_TRUE(job.Run().ok());
  EXPECT_FALSE(dfs.Exists("out.bad"));
}

TEST(IntegrityTest, SkippedRecordCapFailsTheJob) {
  Dfs dfs;
  ASSERT_TRUE(
      dfs.WriteFile("in", {"a b", "!broken 1", "b c", "!broken 2", "a"}).ok());
  auto spec = WordCountSpec("in", "out");
  spec.mapper_factory = [] { return std::make_unique<PickyMapper>(); };
  spec.max_skipped_records = 1;
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kDataLoss);
  EXPECT_FALSE(dfs.Exists("out"));
}

TEST(IntegrityTest, QuarantineIdenticalAcrossCrashRetries) {
  // A crashing-then-retried map task must not quarantine its bad lines
  // twice: only the committed attempt's quarantine list counts.
  Dfs dfs;
  ASSERT_TRUE(
      dfs.WriteFile("in", {"!x", "a b", "!y", "b", "c d", "!z"}).ok());
  auto plan = std::make_shared<FaultPlan>();
  plan->faults.push_back(FaultSpec{.phase = TaskPhase::kMap,
                                   .task_id = 0,
                                   .first_attempt = 0,
                                   .failing_attempts = 2,
                                   .crash_after_records = 1});
  auto spec = WordCountSpec("in", "out");
  spec.mapper_factory = [] { return std::make_unique<PickyMapper>(); };
  spec.fault_plan = plan;
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->records_skipped, 3u);
  EXPECT_EQ(*dfs.ReadFile("out.bad").value(),
            (std::vector<std::string>{"!x", "!y", "!z"}));
}

TEST(IntegrityTest, OutputCommitIsAtomicUnderPermanentReduceFailure) {
  Dfs dfs;
  WriteInput(&dfs);
  auto plan = std::make_shared<FaultPlan>();
  plan->faults.push_back(FaultSpec{.phase = TaskPhase::kReduce,
                                   .task_id = 1,
                                   .first_attempt = 0,
                                   .failing_attempts = FaultSpec::kAllAttempts,
                                   .crash_after_records = 0});
  auto spec = WordCountSpec("in", "out");
  spec.fault_plan = plan;
  Job<K, V> job(&dfs, spec);
  ASSERT_FALSE(job.Run().ok());
  EXPECT_FALSE(dfs.Exists("out"));
  EXPECT_FALSE(dfs.Exists("out.__commit"));
  EXPECT_FALSE(dfs.Exists("out.bad"));
}

TEST(IntegrityTest, VerifiedRunIsByteIdenticalToUnverifiedRun) {
  // Turning verification ON must not change the output of a clean run.
  Baseline baseline = RunBaseline();
  Dfs dfs;
  WriteInput(&dfs);
  auto spec = WordCountSpec("in", "out");
  spec.verify_integrity = true;
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(OutputLines(dfs, "out"), baseline.output);
  EXPECT_EQ(metrics->corruption_detected, 0u);
  EXPECT_GT(metrics->integrity_bytes_verified, 0u);
}

}  // namespace
}  // namespace fj::mr