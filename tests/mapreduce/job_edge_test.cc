// Engine edge cases beyond the happy path: empty inputs, silent mappers,
// more reducers than keys, combiner with a custom partitioner, thread-count
// independence, and metric/counter accounting invariants.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/string_util.h"
#include "mapreduce/job.h"

namespace fj::mr {
namespace {

using K = std::string;
using V = uint64_t;

JobSpec<K, V> CountSpec(const std::string& in, const std::string& out) {
  JobSpec<K, V> spec;
  spec.name = "count";
  spec.input_files = {in};
  spec.output_file = out;
  spec.num_map_tasks = 4;
  spec.num_reduce_tasks = 3;
  spec.mapper_factory = [] {
    return std::make_unique<LambdaMapper<K, V>>(
        [](const InputRecord& record, Emitter<K, V>* out, TaskContext*) {
          for (const auto& w : Split(*record.line, ' ')) {
            if (!w.empty()) out->Emit(w, 1);
          }
        });
  };
  spec.reducer_factory = [] {
    return std::make_unique<LambdaReducer<K, V>>(
        [](const K& key, std::span<const std::pair<K, V>> group,
           OutputEmitter* out, TaskContext*) {
          uint64_t total = 0;
          for (const auto& [k, v] : group) total += v;
          out->Emit(key + "\t" + std::to_string(total));
        });
  };
  return spec;
}

TEST(JobEdgeTest, EmptyInputFileYieldsEmptyOutput) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {}).ok());
  Job<K, V> job(&dfs, CountSpec("in", "out"));
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->map_tasks.size(), 0u);  // nothing to split
  EXPECT_EQ(metrics->reduce_tasks.size(), 3u);
  EXPECT_TRUE(dfs.ReadFile("out").value()->empty());
}

TEST(JobEdgeTest, MapperEmittingNothing) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"a", "b"}).ok());
  auto spec = CountSpec("in", "out");
  spec.mapper_factory = [] {
    return std::make_unique<LambdaMapper<K, V>>(
        [](const InputRecord&, Emitter<K, V>*, TaskContext*) {});
  };
  Job<K, V> job(&dfs, std::move(spec));
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->map_output_records, 0u);
  EXPECT_EQ(metrics->shuffle_bytes, 0u);
  EXPECT_TRUE(dfs.ReadFile("out").value()->empty());
}

TEST(JobEdgeTest, MoreReducersThanKeys) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"only"}).ok());
  auto spec = CountSpec("in", "out");
  spec.num_reduce_tasks = 16;
  Job<K, V> job(&dfs, std::move(spec));
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(dfs.ReadFile("out").value()->size(), 1u);
  // Exactly one reduce task saw input.
  size_t with_input = 0;
  for (const auto& t : metrics->reduce_tasks) {
    with_input += t.input_records > 0;
  }
  EXPECT_EQ(with_input, 1u);
}

TEST(JobEdgeTest, MoreMapTasksThanLines) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"x y", "y z"}).ok());
  auto spec = CountSpec("in", "out");
  spec.num_map_tasks = 50;
  Job<K, V> job(&dfs, std::move(spec));
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok());
  EXPECT_LE(metrics->map_tasks.size(), 2u);  // capped at line count
  std::map<std::string, std::string> rows;
  for (const auto& line : *dfs.ReadFile("out").value()) {
    auto fields = Split(line, '\t');
    rows[fields[0]] = fields[1];
  }
  EXPECT_EQ(rows["y"], "2");
}

TEST(JobEdgeTest, CombinerRespectsCustomPartitioner) {
  // Keys routed by first letter; the combiner must keep each key in its
  // partition, and totals must be exact.
  Dfs dfs;
  std::vector<std::string> lines(30, "apple avocado banana apple");
  ASSERT_TRUE(dfs.WriteFile("in", lines).ok());
  auto spec = CountSpec("in", "out");
  spec.partitioner = [](const K& key, size_t partitions) {
    return static_cast<size_t>(key[0]) % partitions;
  };
  spec.combiner = [](const K& key, std::vector<V>&& values,
                     Emitter<K, V>* out) {
    uint64_t total = 0;
    for (V v : values) total += v;
    out->Emit(key, total);
  };
  Job<K, V> job(&dfs, std::move(spec));
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok());
  std::map<std::string, std::string> rows;
  for (const auto& line : *dfs.ReadFile("out").value()) {
    auto fields = Split(line, '\t');
    rows[fields[0]] = fields[1];
  }
  EXPECT_EQ(rows["apple"], "60");
  EXPECT_EQ(rows["avocado"], "30");
  EXPECT_EQ(rows["banana"], "30");
  // Combined: at most (#map tasks x #distinct keys) shuffle records.
  EXPECT_LE(metrics->shuffle_records, 4u * 3u);
}

TEST(JobEdgeTest, MultiThreadedExecutionMatchesSingleThreaded) {
  Dfs dfs;
  std::vector<std::string> lines;
  for (int i = 0; i < 500; ++i) {
    lines.push_back("w" + std::to_string(i % 37) + " w" +
                    std::to_string(i % 11) + " w" + std::to_string(i % 7));
  }
  ASSERT_TRUE(dfs.WriteFile("in", lines).ok());

  auto single = CountSpec("in", "out1");
  single.local_threads = 1;
  Job<K, V> job1(&dfs, std::move(single));
  ASSERT_TRUE(job1.Run().ok());

  auto multi = CountSpec("in", "out2");
  multi.local_threads = 4;
  Job<K, V> job2(&dfs, std::move(multi));
  ASSERT_TRUE(job2.Run().ok());

  EXPECT_EQ(*dfs.ReadFile("out1").value(), *dfs.ReadFile("out2").value());
}

TEST(JobEdgeTest, InputRecordsConservedAcrossSplits) {
  Dfs dfs;
  std::vector<std::string> lines(997, "x");
  ASSERT_TRUE(dfs.WriteFile("in", lines).ok());
  for (size_t map_tasks : {1u, 3u, 17u, 100u}) {
    auto spec = CountSpec("in", "out" + std::to_string(map_tasks));
    spec.num_map_tasks = map_tasks;
    Job<K, V> job(&dfs, std::move(spec));
    auto metrics = job.Run();
    ASSERT_TRUE(metrics.ok());
    uint64_t total = 0;
    for (const auto& t : metrics->map_tasks) total += t.input_records;
    EXPECT_EQ(total, 997u) << map_tasks << " map tasks";
  }
}

TEST(JobEdgeTest, CountersVisibleAcrossTasks) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"a", "b", "c", "d"}).ok());
  auto spec = CountSpec("in", "out");
  spec.mapper_factory = [] {
    return std::make_unique<LambdaMapper<K, V>>(
        [](const InputRecord&, Emitter<K, V>*, TaskContext* ctx) {
          ctx->counters().Add("records_seen", 1);
        });
  };
  Job<K, V> job(&dfs, std::move(spec));
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->counters.Get("records_seen"), 4);
}

TEST(JobEdgeTest, OutputFileMayBeOmitted) {
  // A job may run purely for side effects (e.g. counters).
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"a"}).ok());
  auto spec = CountSpec("in", "");
  Job<K, V> job(&dfs, std::move(spec));
  EXPECT_TRUE(job.Run().ok());
  EXPECT_FALSE(dfs.Exists(""));
}

TEST(JobEdgeTest, ExistingOutputFileIsAnError) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"a"}).ok());
  ASSERT_TRUE(dfs.WriteFile("out", {"pre-existing"}).ok());
  Job<K, V> job(&dfs, CountSpec("in", "out"));
  EXPECT_EQ(job.Run().status().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace fj::mr
