// Sort-spill-merge shuffle: a bounded sort buffer must change HOW the
// shuffle runs (spills, runs, merge passes, charged disk traffic) without
// changing WHAT it produces. Every test here runs the same job twice —
// unbounded (legacy single in-memory run) and budgeted — and demands
// byte-identical output files, across the comparator shapes the pipeline
// actually uses (default ordering, PK-style secondary sort, BTO-style
// custom sort into a single reducer) and with a combiner in the loop.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "mapreduce/dfs.h"
#include "mapreduce/job.h"

namespace fj::mr {
namespace {

using K = std::string;
using V = uint64_t;

// ~200 lines of skewed words: enough intermediate volume that a tiny
// budget forces many spills per map task.
std::vector<std::string> SkewedLines() {
  std::vector<std::string> lines;
  for (int i = 0; i < 200; ++i) {
    lines.push_back("w" + std::to_string(i % 23) + " w" +
                    std::to_string(i % 7) + " w" + std::to_string(i % 3));
  }
  return lines;
}

JobSpec<K, V> WordCountSpec(const std::string& in, const std::string& out) {
  JobSpec<K, V> spec;
  spec.name = "spill-wordcount";
  spec.input_files = {in};
  spec.output_file = out;
  spec.num_map_tasks = 6;
  spec.num_reduce_tasks = 3;
  spec.mapper_factory = [] {
    return std::make_unique<LambdaMapper<K, V>>(
        [](const InputRecord& record, Emitter<K, V>* out, TaskContext*) {
          for (const auto& w : Split(*record.line, ' ')) {
            if (!w.empty()) out->Emit(w, 1);
          }
        });
  };
  spec.reducer_factory = [] {
    return std::make_unique<LambdaReducer<K, V>>(
        [](const K& key, std::span<const std::pair<K, V>> group,
           OutputEmitter* out, TaskContext*) {
          uint64_t total = 0;
          for (const auto& [k, v] : group) total += v;
          out->Emit(key + "\t" + std::to_string(total));
        });
  };
  return spec;
}

JobMetrics RunOrDie(Dfs* dfs, JobSpec<K, V> spec) {
  Job<K, V> job(dfs, std::move(spec));
  auto metrics = job.Run();
  EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
  return *metrics;
}

const std::vector<std::string>& Output(const Dfs& dfs,
                                       const std::string& file) {
  auto lines = dfs.ReadFile(file);
  EXPECT_TRUE(lines.ok());
  return *lines.value();
}

TEST(SpillShuffleTest, TinyBudgetSpillsButOutputIsByteIdentical) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", SkewedLines()).ok());

  auto legacy = RunOrDie(&dfs, WordCountSpec("in", "legacy"));
  EXPECT_EQ(legacy.spill_count, 0u);
  EXPECT_EQ(legacy.spilled_bytes, 0u);
  // Legacy still streams one merge pass over the per-map-task in-memory
  // runs (one per reduce task); it just never touches disk.
  EXPECT_EQ(legacy.merge_passes, 3u);

  auto spec = WordCountSpec("in", "spilled");
  spec.sort_buffer_bytes = 64;  // a handful of pairs per spill
  auto spilled = RunOrDie(&dfs, std::move(spec));
  EXPECT_GT(spilled.spill_count, 0u);
  EXPECT_GT(spilled.spilled_bytes, 0u);
  EXPECT_GT(spilled.merge_passes, 0u);

  EXPECT_EQ(Output(dfs, "legacy"), Output(dfs, "spilled"));
  // Record/byte accounting does not depend on the execution strategy.
  EXPECT_EQ(spilled.map_output_records, legacy.map_output_records);
  EXPECT_EQ(spilled.shuffle_records, legacy.shuffle_records);
  EXPECT_EQ(spilled.shuffle_bytes, legacy.shuffle_bytes);
  EXPECT_EQ(spilled.input_bytes, legacy.input_bytes);
}

TEST(SpillShuffleTest, PeakBufferBytesBoundedByBudget) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", SkewedLines()).ok());
  const uint64_t budget = 128;
  auto spec = WordCountSpec("in", "out");
  spec.sort_buffer_bytes = budget;
  auto metrics = RunOrDie(&dfs, std::move(spec));
  for (const auto& t : metrics.map_tasks) {
    EXPECT_LE(t.peak_buffer_bytes, budget);
    EXPECT_GT(t.peak_buffer_bytes, 0u);
  }
}

TEST(SpillShuffleTest, SpillTrafficIsChargedToTaskScratch) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", SkewedLines()).ok());
  auto spec = WordCountSpec("in", "out");
  spec.sort_buffer_bytes = 64;
  auto metrics = RunOrDie(&dfs, std::move(spec));
  // Every spilled byte is written through the task's scratch and read back
  // by the merge; both directions show up in the job counters.
  EXPECT_GT(metrics.counters.Get("scratch.spill_bytes_written"), 0);
  EXPECT_GT(metrics.counters.Get("scratch.spill_bytes_read"), 0);
  EXPECT_GE(metrics.counters.Get("scratch.spill_bytes_read"),
            metrics.counters.Get("scratch.spill_bytes_written"));
}

TEST(SpillShuffleTest, TwoWayMergeFactorForcesMultiPassMergeSameOutput) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", SkewedLines()).ok());

  auto legacy = RunOrDie(&dfs, WordCountSpec("in", "legacy"));

  auto wide = WordCountSpec("in", "wide");
  wide.sort_buffer_bytes = 64;
  wide.merge_factor = 64;  // everything merges in one pass
  auto m_wide = RunOrDie(&dfs, std::move(wide));

  auto narrow = WordCountSpec("in", "narrow");
  narrow.sort_buffer_bytes = 64;
  narrow.merge_factor = 2;  // binary merge: many intermediate passes
  auto m_narrow = RunOrDie(&dfs, std::move(narrow));

  EXPECT_EQ(Output(dfs, "legacy"), Output(dfs, "wide"));
  EXPECT_EQ(Output(dfs, "legacy"), Output(dfs, "narrow"));
  EXPECT_GT(m_narrow.merge_passes, m_wide.merge_passes);
  // Intermediate collapses re-spill merged runs, so binary merging also
  // moves more bytes through local disk.
  EXPECT_GT(m_narrow.spilled_bytes, m_wide.spilled_bytes);
}

TEST(SpillShuffleTest, CombinerRunsPerSpillAndNeverInflatesShuffle) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", SkewedLines()).ok());

  auto plain = RunOrDie(&dfs, WordCountSpec("in", "plain"));

  auto combine = [](const K& key, std::vector<V>&& values,
                    Emitter<K, V>* out) {
    uint64_t total = 0;
    for (V v : values) total += v;
    out->Emit(key, total);
  };

  auto legacy = WordCountSpec("in", "legacy");
  legacy.combiner = combine;
  auto m_legacy = RunOrDie(&dfs, std::move(legacy));

  auto spilled = WordCountSpec("in", "spilled");
  spilled.combiner = combine;
  spilled.sort_buffer_bytes = 64;
  auto m_spilled = RunOrDie(&dfs, std::move(spilled));

  // The sum combiner is algebraic, so results match the combiner-free run
  // byte for byte no matter how often it was applied.
  EXPECT_EQ(Output(dfs, "plain"), Output(dfs, "legacy"));
  EXPECT_EQ(Output(dfs, "plain"), Output(dfs, "spilled"));

  // A combiner only ever shrinks traffic: per task and in total.
  for (const auto& m : {m_legacy, m_spilled}) {
    EXPECT_LE(m.shuffle_records, m.map_output_records);
    for (const auto& t : m.map_tasks) {
      EXPECT_LE(t.shuffle_records, t.output_records);
    }
  }
  // Per-spill combining sees fewer duplicates per invocation than one
  // combine over the whole task output, so it saves less — but still
  // strictly less traffic than no combiner at all.
  EXPECT_LE(m_legacy.shuffle_records, m_spilled.shuffle_records);
  EXPECT_LT(m_spilled.shuffle_records, plain.shuffle_records);
}

// PK-style secondary sort: partition on the primary field, sort on
// (primary, secondary), group on the primary. The merge must deliver each
// group contiguously with secondaries ascending, exactly as the legacy
// sort did.
TEST(SpillShuffleTest, SecondarySortComparatorsSurviveSpilling) {
  using K2 = std::pair<std::string, uint64_t>;
  Dfs dfs;
  std::vector<std::string> lines;
  for (int i = 0; i < 120; ++i) {
    lines.push_back("k" + std::to_string(i % 9) + " " +
                    std::to_string((i * 37) % 101));
  }
  ASSERT_TRUE(dfs.WriteFile("in", lines).ok());

  auto make_spec = [](const std::string& out) {
    JobSpec<K2, uint64_t> spec;
    spec.name = "spill-secondary-sort";
    spec.input_files = {"in"};
    spec.output_file = out;
    spec.num_map_tasks = 5;
    spec.num_reduce_tasks = 3;
    spec.mapper_factory = [] {
      return std::make_unique<LambdaMapper<K2, uint64_t>>(
          [](const InputRecord& record, Emitter<K2, uint64_t>* out,
             TaskContext*) {
            auto fields = Split(*record.line, ' ');
            out->Emit(K2(fields[0], *ParseUint64(fields[1])), 0);
          });
    };
    spec.partitioner = [](const K2& key, size_t partitions) {
      return HashString(key.first) % partitions;
    };
    spec.group_equal = [](const K2& a, const K2& b) {
      return a.first == b.first;
    };
    spec.reducer_factory = [] {
      return std::make_unique<LambdaReducer<K2, uint64_t>>(
          [](const K2& key, std::span<const std::pair<K2, uint64_t>> group,
             OutputEmitter* out, TaskContext*) {
            std::string line = key.first + ":";
            for (const auto& [k, v] : group) {
              line += ' ';
              line += std::to_string(k.second);
            }
            out->Emit(line);
          });
    };
    return spec;
  };

  Job<K2, uint64_t> legacy(&dfs, make_spec("legacy"));
  ASSERT_TRUE(legacy.Run().ok());

  auto spec = make_spec("spilled");
  spec.sort_buffer_bytes = 96;
  Job<K2, uint64_t> job(&dfs, std::move(spec));
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->spill_count, 0u);

  EXPECT_EQ(Output(dfs, "legacy"), Output(dfs, "spilled"));
}

// BTO-style: a custom sort_less (descending count, token tiebreak) feeding
// a single reducer. The global order across every map task's runs must
// match the legacy whole-partition sort.
TEST(SpillShuffleTest, CustomSortLessIntoSingleReducerSurvivesSpilling) {
  using KB = std::pair<uint64_t, std::string>;
  Dfs dfs;
  std::vector<std::string> lines;
  for (int i = 0; i < 150; ++i) {
    lines.push_back("t" + std::to_string(i % 31) + " " +
                    std::to_string(1 + i % 13));
  }
  ASSERT_TRUE(dfs.WriteFile("in", lines).ok());

  auto make_spec = [](const std::string& out) {
    JobSpec<KB, uint64_t> spec;
    spec.name = "spill-bto-sort";
    spec.input_files = {"in"};
    spec.output_file = out;
    spec.num_map_tasks = 4;
    spec.num_reduce_tasks = 1;
    spec.mapper_factory = [] {
      return std::make_unique<LambdaMapper<KB, uint64_t>>(
          [](const InputRecord& record, Emitter<KB, uint64_t>* out,
             TaskContext*) {
            auto fields = Split(*record.line, ' ');
            out->Emit(KB(*ParseUint64(fields[1]), fields[0]), 0);
          });
    };
    spec.sort_less = [](const KB& a, const KB& b) {
      if (a.first != b.first) return a.first > b.first;  // descending count
      return a.second < b.second;
    };
    spec.reducer_factory = [] {
      return std::make_unique<LambdaReducer<KB, uint64_t>>(
          [](const KB& key, std::span<const std::pair<KB, uint64_t>> group,
             OutputEmitter* out, TaskContext*) {
            out->Emit(key.second + "\t" + std::to_string(key.first) + "\tx" +
                      std::to_string(group.size()));
          });
    };
    return spec;
  };

  Job<KB, uint64_t> legacy(&dfs, make_spec("legacy"));
  ASSERT_TRUE(legacy.Run().ok());

  auto spec = make_spec("spilled");
  spec.sort_buffer_bytes = 80;
  spec.merge_factor = 2;
  Job<KB, uint64_t> job(&dfs, std::move(spec));
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->spill_count, 0u);
  EXPECT_GT(metrics->merge_passes, 0u);

  EXPECT_EQ(Output(dfs, "legacy"), Output(dfs, "spilled"));
}

TEST(SpillShuffleTest, SinglePairLargerThanBudgetStillWorks) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile(
                     "in", {std::string(300, 'a') + " " + std::string(300, 'b')})
                  .ok());
  auto spec = WordCountSpec("in", "out");
  spec.sort_buffer_bytes = 8;  // smaller than any single pair
  auto metrics = RunOrDie(&dfs, std::move(spec));
  auto out = Output(dfs, "out");
  ASSERT_EQ(out.size(), 2u);
}

TEST(SpillShuffleTest, MergeFactorBelowTwoRejected) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"x"}).ok());
  auto spec = WordCountSpec("in", "out");
  spec.merge_factor = 1;
  Job<K, V> job(&dfs, std::move(spec));
  EXPECT_EQ(job.Run().status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fj::mr
