// Cluster cost model: makespan scheduling, shuffle time, job overhead, and
// the qualitative effects the paper's evaluation depends on (single-reducer
// stages don't scale; balanced task sets do).
#include "mapreduce/cluster_model.h"

#include <gtest/gtest.h>

#include "mapreduce/task_context.h"

namespace fj::mr {
namespace {

TEST(MakespanTest, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(Makespan({}, 4), 0.0);
  EXPECT_DOUBLE_EQ(Makespan({5.0}, 4), 5.0);
  EXPECT_DOUBLE_EQ(Makespan({5.0}, 1), 5.0);
}

TEST(MakespanTest, OneSlotSumsEverything) {
  EXPECT_DOUBLE_EQ(Makespan({1, 2, 3}, 1), 6.0);
}

TEST(MakespanTest, PerfectlyDivisibleTasks) {
  // 8 unit tasks on 4 slots -> 2 waves.
  std::vector<double> tasks(8, 1.0);
  EXPECT_DOUBLE_EQ(Makespan(tasks, 4), 2.0);
  EXPECT_DOUBLE_EQ(Makespan(tasks, 8), 1.0);
  EXPECT_DOUBLE_EQ(Makespan(tasks, 16), 1.0);  // can't beat one task
}

TEST(MakespanTest, LongestTaskDominates) {
  // A 10-second straggler bounds the makespan regardless of slots.
  EXPECT_DOUBLE_EQ(Makespan({10, 1, 1, 1, 1}, 8), 10.0);
}

TEST(MakespanTest, LptBalancesSkew) {
  // LPT: {4,3,3} on 2 slots -> slots {4, 3+3} = 6, not the naive 7.
  EXPECT_DOUBLE_EQ(Makespan({4, 3, 3}, 2), 6.0);
}

TEST(MakespanTest, SingleSlotEdgeCases) {
  // One slot serializes everything, in any order.
  EXPECT_DOUBLE_EQ(Makespan({0.5, 4.0, 0.5, 2.0}, 1), 7.0);
  // Zero-cost tasks neither help nor hurt.
  EXPECT_DOUBLE_EQ(Makespan({0.0, 0.0, 3.0}, 1), 3.0);
}

TEST(MakespanTest, MoreSlotsThanTasks) {
  // Every task gets its own slot; the longest one is the makespan.
  EXPECT_DOUBLE_EQ(Makespan({2.0, 7.0, 1.0}, 64), 7.0);
  // Adding yet more slots changes nothing.
  EXPECT_DOUBLE_EQ(Makespan({2.0, 7.0, 1.0}, 3), 7.0);
}

TEST(SimulateJobTest, ComponentsAddUp) {
  JobMetrics metrics;
  metrics.map_tasks = {TaskMetrics{2.0}, TaskMetrics{2.0}};
  metrics.reduce_tasks = {TaskMetrics{3.0}};
  metrics.shuffle_bytes = 100 * 1024 * 1024;

  ClusterConfig cluster;
  cluster.nodes = 1;
  cluster.map_slots_per_node = 1;
  cluster.reduce_slots_per_node = 1;
  cluster.shuffle_bytes_per_second_per_node = 100 * 1024 * 1024;
  cluster.job_startup_seconds = 5.0;

  auto simulated = SimulateJob(metrics, cluster);
  EXPECT_DOUBLE_EQ(simulated.startup_seconds, 5.0);
  EXPECT_DOUBLE_EQ(simulated.map_seconds, 4.0);     // sequential on 1 slot
  EXPECT_DOUBLE_EQ(simulated.shuffle_seconds, 1.0);  // 100MB over 100MB/s
  EXPECT_DOUBLE_EQ(simulated.reduce_seconds, 3.0);
  EXPECT_DOUBLE_EQ(simulated.total(), 13.0);
}

TEST(SimulateJobTest, ParallelPhasesScaleWithNodesButOverheadDoesNot) {
  JobMetrics metrics;
  for (int i = 0; i < 40; ++i) metrics.map_tasks.push_back(TaskMetrics{1.0});
  for (int i = 0; i < 40; ++i) {
    metrics.reduce_tasks.push_back(TaskMetrics{1.0});
  }
  metrics.shuffle_bytes = 0;

  ClusterConfig small;
  small.nodes = 2;
  ClusterConfig large = small;
  large.nodes = 10;

  auto t_small = SimulateJob(metrics, small);
  auto t_large = SimulateJob(metrics, large);
  EXPECT_GT(t_small.map_seconds, t_large.map_seconds);
  EXPECT_DOUBLE_EQ(t_small.startup_seconds, t_large.startup_seconds);
  // 40 unit tasks on 2 nodes x 4 slots = 5 waves; on 10 nodes = 1 wave.
  EXPECT_DOUBLE_EQ(t_small.map_seconds, 5.0);
  EXPECT_DOUBLE_EQ(t_large.map_seconds, 1.0);
}

TEST(SimulateJobTest, SingleReducerStageDoesNotScale) {
  // The paper's stage-1 sort phase: one reduce task caps the speedup.
  JobMetrics metrics;
  metrics.reduce_tasks = {TaskMetrics{30.0}};
  ClusterConfig two, ten;
  two.nodes = 2;
  ten.nodes = 10;
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, two).reduce_seconds,
                   SimulateJob(metrics, ten).reduce_seconds);
}

TEST(SimulateJobTest, ShuffleScalesWithAggregateBandwidth) {
  JobMetrics metrics;
  metrics.shuffle_bytes = 1000;
  ClusterConfig cluster;
  cluster.shuffle_bytes_per_second_per_node = 100;
  cluster.nodes = 2;
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, cluster).shuffle_seconds, 5.0);
  cluster.nodes = 10;
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, cluster).shuffle_seconds, 1.0);
}

TEST(SimulateJobTest, SpillBytesPricedOnLocalDiskBandwidth) {
  JobMetrics metrics;
  metrics.spilled_bytes = 500;
  ClusterConfig cluster;
  cluster.nodes = 2;
  cluster.local_disk_bytes_per_second_per_node = 100;
  // Written once + read once: 2 * 500 bytes over 200 bytes/s.
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, cluster).spill_seconds, 5.0);
  cluster.nodes = 10;
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, cluster).spill_seconds, 1.0);

  // Spill time is part of the total, and jobs that never spill pay zero.
  metrics.spilled_bytes = 0;
  auto clean = SimulateJob(metrics, cluster);
  EXPECT_DOUBLE_EQ(clean.spill_seconds, 0.0);
}

TEST(SimulateJobTest, IntegrityBytesPricedOnChecksumBandwidth) {
  JobMetrics metrics;
  metrics.integrity_bytes_verified = 1000;
  ClusterConfig cluster;
  cluster.nodes = 2;
  cluster.integrity_bytes_per_second_per_node = 100;
  // Each verified byte is hashed exactly once: 1000 bytes over 200 bytes/s.
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, cluster).integrity_seconds, 5.0);
  cluster.nodes = 10;
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, cluster).integrity_seconds, 1.0);

  // Part of the total; jobs that never verify pay zero.
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, cluster).total(),
                   cluster.job_startup_seconds + 1.0);
  metrics.integrity_bytes_verified = 0;
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, cluster).integrity_seconds, 0.0);
}

TEST(SimulateJobTest, IntegritySecondsScaleWithWorkScale) {
  JobMetrics metrics;
  metrics.integrity_bytes_verified = 1000;
  ClusterConfig cluster;
  cluster.nodes = 1;
  cluster.integrity_bytes_per_second_per_node = 100;
  double base = SimulateJob(metrics, cluster).integrity_seconds;
  cluster.work_scale = 8.0;
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, cluster).integrity_seconds, 8 * base);
}

TEST(SimulateJobTest, SpillSecondsScaleWithWorkScale) {
  JobMetrics metrics;
  metrics.spilled_bytes = 1000;
  ClusterConfig cluster;
  cluster.nodes = 1;
  cluster.local_disk_bytes_per_second_per_node = 1000;
  cluster.work_scale = 50.0;
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, cluster).spill_seconds, 100.0);
}

// --- fault-tolerance cost modeling ---

TaskMetrics TaskWithChain(double seconds, double failed_seconds,
                          double loser_seconds = 0.0) {
  TaskMetrics t;
  t.seconds = seconds;
  t.failed_attempt_seconds = failed_seconds;
  if (failed_seconds > 0) t.failed_attempts = 1;
  t.speculative_loser_seconds = loser_seconds;
  if (loser_seconds > 0) t.speculative_launched = true;
  return t;
}

TEST(SimulateJobTest, RetryChainSerializesIntoTheTaskSlot) {
  // One task crashed once (3s wasted) then committed in 2s: its slot is
  // busy for 5s, which bounds the single-slot makespan.
  JobMetrics metrics;
  metrics.map_tasks = {TaskWithChain(2.0, 3.0)};
  ClusterConfig cluster;
  cluster.nodes = 1;
  cluster.map_slots_per_node = 1;
  auto simulated = SimulateJob(metrics, cluster);
  EXPECT_DOUBLE_EQ(simulated.map_seconds, 5.0);
  EXPECT_DOUBLE_EQ(simulated.wasted_seconds, 3.0);
}

TEST(SimulateJobTest, SpeculativeLoserOccupiesAParallelSlot) {
  // Winner committed in 2s; the loser burned 4s concurrently. With two
  // slots the loser bounds the phase; with one slot they serialize.
  JobMetrics metrics;
  metrics.map_tasks = {TaskWithChain(2.0, 0.0, 4.0)};
  ClusterConfig two_slots;
  two_slots.nodes = 1;
  two_slots.map_slots_per_node = 2;
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, two_slots).map_seconds, 4.0);

  ClusterConfig one_slot;
  one_slot.nodes = 1;
  one_slot.map_slots_per_node = 1;
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, one_slot).map_seconds, 6.0);
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, one_slot).wasted_seconds, 4.0);
}

TEST(SimulateJobTest, WastedSecondsIsInformationalNotAdditive) {
  // total() must not double-charge wasted work: it is already inside the
  // phase makespans.
  JobMetrics metrics;
  metrics.reduce_tasks = {TaskWithChain(1.0, 2.0, 3.0)};
  ClusterConfig cluster;
  cluster.nodes = 1;
  cluster.reduce_slots_per_node = 2;
  cluster.job_startup_seconds = 0.0;
  auto simulated = SimulateJob(metrics, cluster);
  EXPECT_DOUBLE_EQ(simulated.wasted_seconds, 5.0);
  EXPECT_DOUBLE_EQ(simulated.total(), simulated.reduce_seconds);
}

TEST(SimulateJobTest, WastedSecondsScalesWithWorkScale) {
  JobMetrics metrics;
  metrics.map_tasks = {TaskWithChain(1.0, 2.0)};
  ClusterConfig cluster;
  cluster.work_scale = 10.0;
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, cluster).wasted_seconds, 20.0);
}

TEST(SimulateJobTest, ZeroTasksHaveNoWaste) {
  JobMetrics metrics;
  ClusterConfig cluster;
  auto simulated = SimulateJob(metrics, cluster);
  EXPECT_DOUBLE_EQ(simulated.map_seconds, 0.0);
  EXPECT_DOUBLE_EQ(simulated.reduce_seconds, 0.0);
  EXPECT_DOUBLE_EQ(simulated.wasted_seconds, 0.0);
}

TEST(SimulateJobTest, MoreBackupsThanSlotsQueue) {
  // Four tasks each dragging a 1s speculative loser on a single slot:
  // 4 x (1 + 1) = 8 serialized seconds.
  JobMetrics metrics;
  for (int i = 0; i < 4; ++i) {
    metrics.map_tasks.push_back(TaskWithChain(1.0, 0.0, 1.0));
  }
  ClusterConfig cluster;
  cluster.nodes = 1;
  cluster.map_slots_per_node = 1;
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, cluster).map_seconds, 8.0);
  // With plenty of slots every entry runs alone: the longest (1s) bounds.
  cluster.map_slots_per_node = 16;
  EXPECT_DOUBLE_EQ(SimulateJob(metrics, cluster).map_seconds, 1.0);
}

TEST(SimulateJobTest, StragglerSlowerThanBackupStillCharged) {
  // The backup won (committed 1s); the straggler lost after 9s. The
  // loser's slot time dominates a two-slot phase.
  JobMetrics metrics;
  TaskMetrics t = TaskWithChain(1.0, 0.0, 9.0);
  t.speculative_won = true;
  metrics.map_tasks = {t};
  ClusterConfig cluster;
  cluster.nodes = 1;
  cluster.map_slots_per_node = 2;
  auto simulated = SimulateJob(metrics, cluster);
  EXPECT_DOUBLE_EQ(simulated.map_seconds, 9.0);
  EXPECT_DOUBLE_EQ(simulated.wasted_seconds, 9.0);
}

TEST(SimulatePipelineTest, SumsJobs) {
  JobMetrics a, b;
  a.map_tasks = {TaskMetrics{1.0}};
  b.map_tasks = {TaskMetrics{2.0}};
  ClusterConfig cluster;
  cluster.job_startup_seconds = 3.0;
  EXPECT_DOUBLE_EQ(SimulatePipelineSeconds({a, b}, cluster),
                   (3.0 + 1.0) + (3.0 + 2.0));
}

TEST(LocalScratchTest, MetersIO) {
  LocalScratch scratch(1e-6);
  scratch.Put("k", {"0123456789"});  // 11 bytes with newline
  EXPECT_EQ(scratch.bytes_written(), 11u);
  auto got = scratch.Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(scratch.bytes_read(), 11u);
  // Re-reading meters again (the reduce-based strategy re-reads blocks).
  ASSERT_TRUE(scratch.Get("k").ok());
  EXPECT_EQ(scratch.bytes_read(), 22u);
  EXPECT_DOUBLE_EQ(scratch.io_seconds(), 33e-6);
  EXPECT_EQ(scratch.Get("missing").status().code(), StatusCode::kNotFound);
  scratch.Erase("k");
  EXPECT_FALSE(scratch.Get("k").ok());
}

TEST(LocalScratchTest, SpillChannelIsMeteredSeparately) {
  LocalScratch scratch(1e-6);
  scratch.ChargeSpillWrite(1000);
  scratch.ChargeSpillRead(400);
  scratch.ChargeSpillRead(600);
  EXPECT_EQ(scratch.spill_bytes_written(), 1000u);
  EXPECT_EQ(scratch.spill_bytes_read(), 1000u);
  // Spill traffic is priced by the cluster model's local-disk term, not by
  // the scratch's own io_seconds — no double charging.
  EXPECT_DOUBLE_EQ(scratch.io_seconds(), 0.0);
  EXPECT_EQ(scratch.bytes_written(), 0u);
  EXPECT_EQ(scratch.bytes_read(), 0u);
}

TEST(TaskContextTest, ChargesAccumulate) {
  CounterSet counters;
  TaskContext ctx(3, &counters);
  EXPECT_EQ(ctx.task_id(), 3u);
  ctx.ChargeSeconds(1.5);
  ctx.ChargeSeconds(0.5);
  EXPECT_DOUBLE_EQ(ctx.charged_seconds(), 2.0);
  ctx.counters().Add("c", 2);
  EXPECT_EQ(counters.Get("c"), 2);
}

}  // namespace
}  // namespace fj::mr
