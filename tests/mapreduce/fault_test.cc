// Fault-tolerance contract tests for the engine's task-attempt layer:
// transient crashes retry to a byte-identical result (output, metrics,
// counters), permanent failures surface as a clean job-level Status with
// no output written, stragglers get speculative backups with
// first-finisher-wins commit, and the probabilistic fault layer is
// deterministic and recoverable — including with spilling and
// multi-threaded execution.
#include "mapreduce/fault.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/string_util.h"
#include "mapreduce/dfs.h"
#include "mapreduce/job.h"

namespace fj::mr {
namespace {

using K = std::string;
using V = uint64_t;

// Splits each line into words and emits (word, 1); counts mapped records
// so the tests can check counters survive faults unduplicated.
class WordCountMapper : public Mapper<K, V> {
 public:
  void Map(const InputRecord& record, Emitter<K, V>* out,
           TaskContext* ctx) override {
    ctx->counters().Add("mapper.lines", 1);
    for (const auto& w : Split(*record.line, ' ')) {
      if (!w.empty()) out->Emit(w, 1);
    }
  }
};

class SumReducer : public Reducer<K, V> {
 public:
  void Reduce(const K& key, std::span<const std::pair<K, V>> group,
              OutputEmitter* out, TaskContext* ctx) override {
    ctx->counters().Add("reducer.groups", 1);
    uint64_t total = 0;
    for (const auto& [k, v] : group) total += v;
    out->Emit(key + "\t" + std::to_string(total));
  }
};

JobSpec<K, V> WordCountSpec(const std::string& in, const std::string& out) {
  JobSpec<K, V> spec;
  spec.name = "wordcount";
  spec.input_files = {in};
  spec.output_file = out;
  spec.num_map_tasks = 3;
  spec.num_reduce_tasks = 3;
  spec.mapper_factory = [] { return std::make_unique<WordCountMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  return spec;
}

void WriteInput(Dfs* dfs) {
  ASSERT_TRUE(
      dfs->WriteFile("in", {"a b a", "b c", "a d e", "f g", "c c c", "h a b"})
          .ok());
}

// Charges every task of `phase` a uniform simulated second on its first
// attempt. The speculation detector works on measured wall time, and these
// tiny test tasks finish in microseconds — one scheduler hiccup can push a
// task past 3x the phase median and trigger a spurious backup (which may
// even win, perturbing the job's speculation counters). A flat charge
// swamps that noise: no task in the stabilized phase can exceed the
// threshold, so only the phase under test ever speculates.
void StabilizePhase(FaultPlan* plan, TaskPhase phase, size_t tasks) {
  for (size_t t = 0; t < tasks; ++t) {
    plan->faults.push_back(FaultSpec{.phase = phase,
                                     .task_id = static_cast<uint32_t>(t),
                                     .first_attempt = 0,
                                     .failing_attempts = 1,
                                     .extra_seconds = 1.0});
  }
}

std::vector<std::string> OutputLines(const Dfs& dfs, const std::string& file) {
  auto lines = dfs.ReadFile(file);
  EXPECT_TRUE(lines.ok()) << lines.status().ToString();
  return lines.ok() ? *lines.value() : std::vector<std::string>{};
}

// Runs the fault-free baseline once.
struct Baseline {
  std::vector<std::string> output;
  std::map<std::string, int64_t> counters;
};

Baseline RunBaseline() {
  Dfs dfs;
  WriteInput(&dfs);
  Job<K, V> job(&dfs, WordCountSpec("in", "out"));
  auto metrics = job.Run();
  EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
  return Baseline{OutputLines(dfs, "out"), metrics->counters.Snapshot()};
}

TEST(FaultTest, TransientMapCrashRetriesToIdenticalResult) {
  Baseline baseline = RunBaseline();

  Dfs dfs;
  WriteInput(&dfs);
  auto plan = std::make_shared<FaultPlan>();
  // Task 1's first two attempts die after one record; the third commits.
  plan->faults.push_back(FaultSpec{.phase = TaskPhase::kMap,
                                   .task_id = 1,
                                   .first_attempt = 0,
                                   .failing_attempts = 2,
                                   .crash_after_records = 1});
  auto spec = WordCountSpec("in", "out");
  spec.fault_plan = plan;
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  EXPECT_EQ(OutputLines(dfs, "out"), baseline.output);
  EXPECT_EQ(metrics->counters.Snapshot(), baseline.counters);
  EXPECT_EQ(metrics->map_tasks[1].attempts, 3u);
  EXPECT_EQ(metrics->map_tasks[1].failed_attempts, 2u);
  EXPECT_GT(metrics->map_tasks[1].failed_attempt_seconds, 0.0);
  EXPECT_GT(metrics->map_tasks[1].wasted_seconds(), 0.0);
  EXPECT_EQ(metrics->failed_attempts, 2u);
  // The other tasks ran once.
  EXPECT_EQ(metrics->map_tasks[0].failed_attempts, 0u);
  EXPECT_EQ(metrics->map_tasks[2].attempts, 1u);
}

TEST(FaultTest, TransientReduceCrashRetriesToIdenticalResult) {
  Baseline baseline = RunBaseline();

  Dfs dfs;
  WriteInput(&dfs);
  auto plan = std::make_shared<FaultPlan>();
  // Reduce task 0 dies after its first key group, once.
  plan->faults.push_back(FaultSpec{.phase = TaskPhase::kReduce,
                                   .task_id = 0,
                                   .first_attempt = 0,
                                   .failing_attempts = 1,
                                   .crash_after_records = 1});
  auto spec = WordCountSpec("in", "out");
  spec.fault_plan = plan;
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  EXPECT_EQ(OutputLines(dfs, "out"), baseline.output);
  EXPECT_EQ(metrics->counters.Snapshot(), baseline.counters);
  EXPECT_EQ(metrics->reduce_tasks[0].attempts, 2u);
  EXPECT_EQ(metrics->reduce_tasks[0].failed_attempts, 1u);
  EXPECT_EQ(metrics->failed_attempts, 1u);
}

TEST(FaultTest, CrashBeyondRecordCountNeverFires) {
  Baseline baseline = RunBaseline();

  Dfs dfs;
  WriteInput(&dfs);
  auto plan = std::make_shared<FaultPlan>();
  // 6 input lines over 3 map tasks = 2 records per split; a budget of 100
  // records is never reached, so the attempt completes.
  plan->faults.push_back(FaultSpec{.phase = TaskPhase::kMap,
                                   .task_id = 0,
                                   .failing_attempts = FaultSpec::kAllAttempts,
                                   .crash_after_records = 100});
  auto spec = WordCountSpec("in", "out");
  spec.fault_plan = plan;
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(OutputLines(dfs, "out"), baseline.output);
  EXPECT_EQ(metrics->failed_attempts, 0u);
}

TEST(FaultTest, PermanentFailureFailsJobWithoutOutput) {
  Dfs dfs;
  WriteInput(&dfs);
  auto plan = std::make_shared<FaultPlan>();
  plan->faults.push_back(FaultSpec{.phase = TaskPhase::kReduce,
                                   .task_id = 1,
                                   .failing_attempts = FaultSpec::kAllAttempts,
                                   .crash_after_records = 0});
  auto spec = WordCountSpec("in", "out");
  spec.fault_plan = plan;
  spec.max_task_attempts = 3;
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_FALSE(metrics.ok());
  const std::string message = metrics.status().ToString();
  EXPECT_NE(message.find("reduce task 1"), std::string::npos) << message;
  EXPECT_NE(message.find("3 attempts"), std::string::npos) << message;
  // No partial output: the file was never written.
  EXPECT_FALSE(dfs.ReadFile("out").ok());
  EXPECT_FALSE(plan->RecoverableWith(spec.max_task_attempts));
}

TEST(FaultTest, MaxAttemptsBoundsTheRetryChain) {
  Dfs dfs;
  WriteInput(&dfs);
  auto make_spec = [](uint32_t failing) {
    auto plan = std::make_shared<FaultPlan>();
    plan->faults.push_back(FaultSpec{.phase = TaskPhase::kMap,
                                     .task_id = 0,
                                     .failing_attempts = failing,
                                     .crash_after_records = 0});
    auto spec = WordCountSpec("in", "out");
    spec.fault_plan = plan;
    spec.max_task_attempts = 2;
    return spec;
  };

  // Two crashing attempts exhaust a budget of two.
  Job<K, V> failing_job(&dfs, make_spec(2));
  EXPECT_FALSE(failing_job.Run().ok());
  // One crashing attempt leaves room for the retry to commit.
  Job<K, V> recovering_job(&dfs, make_spec(1));
  auto metrics = recovering_job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->map_tasks[0].failed_attempts, 1u);
}

TEST(FaultTest, StragglerGetsSpeculativeBackupThatWins) {
  Baseline baseline = RunBaseline();

  Dfs dfs;
  WriteInput(&dfs);
  auto plan = std::make_shared<FaultPlan>();
  StabilizePhase(plan.get(), TaskPhase::kReduce, 3);
  // Map task 2's original attempt straggles badly; the backup (attempt 1)
  // is unaffected and finishes first.
  plan->faults.push_back(FaultSpec{.phase = TaskPhase::kMap,
                                   .task_id = 2,
                                   .first_attempt = 0,
                                   .failing_attempts = 1,
                                   .extra_seconds = 50.0});
  auto spec = WordCountSpec("in", "out");
  spec.fault_plan = plan;
  spec.speculative_execution = true;
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  EXPECT_EQ(OutputLines(dfs, "out"), baseline.output);
  EXPECT_EQ(metrics->counters.Snapshot(), baseline.counters);
  const TaskMetrics& task = metrics->map_tasks[2];
  EXPECT_TRUE(task.speculative_launched);
  EXPECT_TRUE(task.speculative_won);
  EXPECT_EQ(task.attempts, 2u);
  // The committed cost is the backup's (fast) run, and the straggler was
  // KILLED at the backup's commit — its wasted slot time is the backup's
  // finish time, not the 50 seconds it would have dragged on for.
  EXPECT_GT(task.speculative_loser_seconds, 0.0);
  EXPECT_LT(task.speculative_loser_seconds, 1.0);
  EXPECT_LT(task.seconds, 1.0);
  EXPECT_EQ(metrics->speculative_launched, 1u);
  EXPECT_EQ(metrics->speculative_wins, 1u);
  EXPECT_LT(metrics->wasted_task_seconds, 1.0);
}

TEST(FaultTest, CrashedBackupLeavesPrimaryCommitStanding) {
  Baseline baseline = RunBaseline();

  Dfs dfs;
  WriteInput(&dfs);
  auto plan = std::make_shared<FaultPlan>();
  StabilizePhase(plan.get(), TaskPhase::kMap, 3);
  // Reduce task 1 straggles (but commits) — and its backup crashes.
  plan->faults.push_back(FaultSpec{.phase = TaskPhase::kReduce,
                                   .task_id = 1,
                                   .first_attempt = 0,
                                   .failing_attempts = 1,
                                   .extra_seconds = 50.0});
  plan->faults.push_back(FaultSpec{.phase = TaskPhase::kReduce,
                                   .task_id = 1,
                                   .first_attempt = 1,
                                   .failing_attempts = 1,
                                   .crash_after_records = 0});
  auto spec = WordCountSpec("in", "out");
  spec.fault_plan = plan;
  spec.speculative_execution = true;
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  EXPECT_EQ(OutputLines(dfs, "out"), baseline.output);
  const TaskMetrics& task = metrics->reduce_tasks[1];
  EXPECT_TRUE(task.speculative_launched);
  EXPECT_FALSE(task.speculative_won);
  // The straggler's committed cost stands; the dead backup is wasted work.
  EXPECT_GE(task.seconds, 50.0);
  EXPECT_GT(task.speculative_loser_seconds, 0.0);
  EXPECT_EQ(metrics->speculative_wins, 0u);
}

TEST(FaultTest, SlowBackupLosesToPrimary) {
  Baseline baseline = RunBaseline();

  Dfs dfs;
  WriteInput(&dfs);
  auto plan = std::make_shared<FaultPlan>();
  // The original straggles by 50s; the backup is even slower (200s), so
  // first-finisher-wins keeps the original's commit.
  plan->faults.push_back(FaultSpec{.phase = TaskPhase::kMap,
                                   .task_id = 0,
                                   .first_attempt = 0,
                                   .failing_attempts = 1,
                                   .extra_seconds = 50.0});
  plan->faults.push_back(FaultSpec{.phase = TaskPhase::kMap,
                                   .task_id = 0,
                                   .first_attempt = 1,
                                   .failing_attempts = 1,
                                   .extra_seconds = 200.0});
  auto spec = WordCountSpec("in", "out");
  spec.fault_plan = plan;
  spec.speculative_execution = true;
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  EXPECT_EQ(OutputLines(dfs, "out"), baseline.output);
  const TaskMetrics& task = metrics->map_tasks[0];
  EXPECT_TRUE(task.speculative_launched);
  EXPECT_FALSE(task.speculative_won);
  EXPECT_GE(task.seconds, 50.0);
  // The backup was killed at the primary's 50s commit — it never ran its
  // full 200 seconds.
  EXPECT_GE(task.speculative_loser_seconds, 40.0);
  EXPECT_LT(task.speculative_loser_seconds, 100.0);
}

TEST(FaultTest, RetryChainThenSpeculationComposes) {
  Baseline baseline = RunBaseline();

  Dfs dfs;
  WriteInput(&dfs);
  auto plan = std::make_shared<FaultPlan>();
  // Attempt 0 crashes; attempt 1 commits but straggles; the backup
  // (attempt 2) is clean and wins.
  plan->faults.push_back(FaultSpec{.phase = TaskPhase::kMap,
                                   .task_id = 1,
                                   .first_attempt = 0,
                                   .failing_attempts = 1,
                                   .crash_after_records = 0});
  plan->faults.push_back(FaultSpec{.phase = TaskPhase::kMap,
                                   .task_id = 1,
                                   .first_attempt = 1,
                                   .failing_attempts = 1,
                                   .extra_seconds = 50.0});
  auto spec = WordCountSpec("in", "out");
  spec.fault_plan = plan;
  spec.speculative_execution = true;
  Job<K, V> job(&dfs, spec);
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  EXPECT_EQ(OutputLines(dfs, "out"), baseline.output);
  const TaskMetrics& task = metrics->map_tasks[1];
  EXPECT_EQ(task.attempts, 3u);
  EXPECT_EQ(task.failed_attempts, 1u);
  EXPECT_TRUE(task.speculative_won);
  // Kill-at-commit: the straggling retry died at the backup's (fast)
  // finish, so barely any of its 50 charged seconds were wasted.
  EXPECT_LT(task.speculative_loser_seconds, 1.0);
}

TEST(FaultTest, ProbabilisticPlanIsDeterministicAndRecoverable) {
  Baseline baseline = RunBaseline();

  auto plan = std::make_shared<FaultPlan>();
  plan->seed = 7;
  plan->crash_probability = 0.9;  // nearly every task loses early attempts
  plan->crash_after_records = 1;
  plan->crash_failing_attempts = 2;
  plan->straggler_probability = 0.5;
  plan->straggler_extra_seconds = 10.0;
  ASSERT_TRUE(plan->RecoverableWith(4));
  ASSERT_FALSE(plan->RecoverableWith(2));

  auto run = [&plan](size_t threads) {
    Dfs dfs;
    WriteInput(&dfs);
    auto spec = WordCountSpec("in", "out");
    spec.fault_plan = plan;
    spec.local_threads = threads;
    spec.sort_buffer_bytes = 64;  // force spilling under faults too
    Job<K, V> job(&dfs, spec);
    auto metrics = job.Run();
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    return std::make_pair(OutputLines(dfs, "out"),
                          metrics.ok() ? metrics->failed_attempts : 0);
  };

  auto [out1, failed1] = run(1);
  auto [out2, failed2] = run(1);
  auto [out4, failed4] = run(4);
  EXPECT_EQ(out1, baseline.output);
  EXPECT_EQ(out2, baseline.output);
  EXPECT_EQ(out4, baseline.output);
  // The drawn faults are a pure function of (seed, job, coordinates):
  // identical across runs and thread counts.
  EXPECT_GT(failed1, 0u);
  EXPECT_EQ(failed1, failed2);
  EXPECT_EQ(failed1, failed4);
}

TEST(FaultTest, JobSubstringScopesSpecsToMatchingJobs) {
  FaultSpec scoped{.phase = TaskPhase::kMap,
                   .task_id = 0,
                   .crash_after_records = 0,
                   .job_substring = "stage2"};
  EXPECT_TRUE(scoped.AppliesTo(TaskPhase::kMap, 0, 0, "pipeline-stage2-pk"));
  EXPECT_FALSE(scoped.AppliesTo(TaskPhase::kMap, 0, 0, "stage1-sort"));
  EXPECT_FALSE(scoped.AppliesTo(TaskPhase::kReduce, 0, 0, "stage2"));
  EXPECT_FALSE(scoped.AppliesTo(TaskPhase::kMap, 1, 0, "stage2"));
}

TEST(FaultTest, CorruptionRecoverabilityRequiresVerification) {
  FaultPlan plan;
  plan.faults.push_back(FaultSpec{.phase = TaskPhase::kMap,
                                  .task_id = 0,
                                  .first_attempt = 0,
                                  .failing_attempts = 2,
                                  .corrupt_target = CorruptTarget::kMapOutput});
  EXPECT_FALSE(plan.Empty());
  // Without verification nothing detects the flipped byte — the plan can
  // never be recovered from, whatever the attempt budget.
  EXPECT_FALSE(plan.RecoverableWith(4));
  EXPECT_FALSE(plan.RecoverableWith(100, false));
  // With verification, detection converts corruption into bounded retries:
  // attempts 0 and 1 fail, so a budget of 3+ recovers and 2 does not.
  EXPECT_TRUE(plan.RecoverableWith(3, true));
  EXPECT_FALSE(plan.RecoverableWith(2, true));

  FaultPlan probabilistic;
  probabilistic.corrupt_probability = 0.3;
  probabilistic.corrupt_failing_attempts = 2;
  EXPECT_FALSE(probabilistic.Empty());
  EXPECT_FALSE(probabilistic.RecoverableWith(4));
  EXPECT_TRUE(probabilistic.RecoverableWith(4, true));
  EXPECT_FALSE(probabilistic.RecoverableWith(2, true));

  FaultPlan permanent;
  permanent.faults.push_back(
      FaultSpec{.phase = TaskPhase::kMap,
                .failing_attempts = FaultSpec::kAllAttempts,
                .corrupt_target = CorruptTarget::kMapOutput});
  EXPECT_FALSE(permanent.RecoverableWith(100, true));
}

TEST(FaultTest, CorruptionSaltsAreDeterministicAndPerAttempt) {
  FaultPlan plan;
  plan.faults.push_back(FaultSpec{.phase = TaskPhase::kMap,
                                  .task_id = 1,
                                  .first_attempt = 0,
                                  .failing_attempts = 2,
                                  .corrupt_target = CorruptTarget::kSpill,
                                  .corrupt_salt = 9});
  FaultInjector a(&plan, "job");
  FaultInjector b(&plan, "job");
  AttemptFault first = a.FaultFor(TaskPhase::kMap, 1, 0);
  ASSERT_TRUE(first.corrupts());
  EXPECT_EQ(first.corrupt_target, CorruptTarget::kSpill);
  // Same coordinates resolve to the same salt across injectors...
  EXPECT_EQ(first.corrupt_salt, b.FaultFor(TaskPhase::kMap, 1, 0).corrupt_salt);
  // ...different attempts corrupt a different deterministic location, and
  // attempts past the failing range are clean.
  EXPECT_NE(first.corrupt_salt, a.FaultFor(TaskPhase::kMap, 1, 1).corrupt_salt);
  EXPECT_FALSE(a.FaultFor(TaskPhase::kMap, 1, 2).corrupts());
  EXPECT_FALSE(a.FaultFor(TaskPhase::kMap, 0, 0).corrupts());
  EXPECT_FALSE(a.FaultFor(TaskPhase::kReduce, 1, 0).corrupts());
}

TEST(FaultTest, InvalidSpeculationConfigRejected) {
  Dfs dfs;
  WriteInput(&dfs);
  auto spec = WordCountSpec("in", "out");
  spec.speculative_execution = true;
  spec.speculation_slowdown_factor = 1.0;
  Job<K, V> bad_factor(&dfs, spec);
  EXPECT_FALSE(bad_factor.Run().ok());

  auto spec2 = WordCountSpec("in", "out");
  spec2.max_task_attempts = 0;
  Job<K, V> bad_attempts(&dfs, spec2);
  EXPECT_FALSE(bad_attempts.Run().ok());
}

}  // namespace
}  // namespace fj::mr
