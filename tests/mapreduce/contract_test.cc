// Contract-checker tests (mapreduce/contract.h): jobs with deliberately
// broken comparators, partitioners, combiners, and reducers must fail with
// a structured FailedPrecondition naming the violated rule BEFORE any
// output is written — and a lawful job must produce byte-identical output
// with checks on and off, with only the metering differing.
#include "mapreduce/contract.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "mapreduce/dfs.h"
#include "mapreduce/job.h"

namespace fj::mr {
namespace {

using K = std::string;
using V = uint64_t;

// Wordcount with contract checking on and every key sampled, so a planted
// violation cannot slip through the sampling.
JobSpec<K, V> CheckedSpec(const std::string& in, const std::string& out) {
  JobSpec<K, V> spec;
  spec.name = "checked";
  spec.input_files = {in};
  spec.output_file = out;
  spec.num_reduce_tasks = 2;
  spec.check_contracts = true;
  spec.contract_sample_every = 1;
  spec.mapper_factory = [] {
    return std::make_unique<LambdaMapper<K, V>>(
        [](const InputRecord& record, Emitter<K, V>* out, TaskContext*) {
          for (const auto& w : Split(*record.line, ' ')) {
            if (!w.empty()) out->Emit(w, 1);
          }
        });
  };
  spec.reducer_factory = [] {
    return std::make_unique<LambdaReducer<K, V>>(
        [](const K& key, std::span<const std::pair<K, V>> group,
           OutputEmitter* out, TaskContext*) {
          uint64_t total = 0;
          for (const auto& [k, v] : group) total += v;
          out->Emit(key + "\t" + std::to_string(total));
        });
  };
  return spec;
}

// Runs the job and asserts it fails with a contract violation naming
// `rule`, without committing an output file.
void ExpectViolation(Dfs* dfs, JobSpec<K, V> spec, const std::string& rule) {
  const std::string out = spec.output_file;
  Job<K, V> job(dfs, std::move(spec));
  auto metrics = job.Run();
  ASSERT_FALSE(metrics.ok()) << "expected a [" << rule << "] violation";
  const Status status = metrics.status();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.ToString();
  EXPECT_NE(status.message().find("contract violation [" + rule + "]"),
            std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("job 'checked'"), std::string::npos)
      << status.ToString();
  EXPECT_FALSE(dfs->Exists(out)) << "violating job must not commit output";
}

TEST(ContractTest, NonTransitiveSortComparatorFails) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"a b c"}).ok());
  auto spec = CheckedSpec("in", "out");
  // Rock-paper-scissors: a < b < c < a. Irreflexive and asymmetric on
  // every pair, so only the sampled-triple check can expose it.
  spec.sort_less = [](const K& a, const K& b) {
    return (a == "a" && b == "b") || (b == "c" && a == "b") ||
           (a == "c" && b == "a");
  };
  ExpectViolation(&dfs, std::move(spec), "sort_less not transitive");
}

TEST(ContractTest, GroupSplittingPartitionerFails) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"a1 a2"}).ok());
  auto spec = CheckedSpec("in", "out");
  // Group on the first character, but partition on the digit: "a1" and
  // "a2" are one reduce group landing in two partitions.
  spec.group_equal = [](const K& a, const K& b) { return a[0] == b[0]; };
  spec.partitioner = [](const K& key, size_t num_partitions) {
    return static_cast<size_t>(key.back() - '0') % num_partitions;
  };
  ExpectViolation(&dfs, std::move(spec), "partitioner splits a key group");
}

TEST(ContractTest, NonAssociativeCombinerFails) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"x x x"}).ok());
  auto spec = CheckedSpec("in", "out");
  spec.mapper_factory = [] {
    return std::make_unique<LambdaMapper<K, V>>(
        [](const InputRecord&, Emitter<K, V>* out, TaskContext*) {
          out->Emit("x", 2);
          out->Emit("x", 3);
          out->Emit("x", 4);
        });
  };
  // Sum of squares: combine({2,3,4}) = 29, but combining the partial
  // aggregates combine({4, 25}) = 641 — partials do not compose.
  spec.combiner = [](const K& key, std::vector<V>&& values,
                     Emitter<K, V>* out) {
    uint64_t total = 0;
    for (V v : values) total += v * v;
    out->Emit(key, total);
  };
  ExpectViolation(&dfs, std::move(spec), "combiner not associative");
}

TEST(ContractTest, PartitionOutOfRangeFails) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"a b"}).ok());
  auto spec = CheckedSpec("in", "out");
  spec.partitioner = [](const K&, size_t num_partitions) {
    return num_partitions;  // one past the end
  };
  ExpectViolation(&dfs, std::move(spec), "partition out of range");
}

TEST(ContractTest, GroupComparatorFinerThanSortOrderFails) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"a1 a2"}).ok());
  auto spec = CheckedSpec("in", "out");
  // Sort can't tell "a1" from "a2" but grouping can: equal-sorting keys
  // would land in one merged run yet split into interleaved groups.
  spec.sort_less = [](const K& a, const K& b) { return a[0] < b[0]; };
  spec.group_equal = [](const K& a, const K& b) { return a == b; };
  ExpectViolation(&dfs, std::move(spec),
                  "group comparator finer than sort order");
}

TEST(ContractTest, ReducerMutatingKeyFails) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"a b"}).ok());
  auto spec = CheckedSpec("in", "out");
  spec.reducer_factory = [] {
    return std::make_unique<LambdaReducer<K, V>>(
        [](const K& key, std::span<const std::pair<K, V>> group,
           OutputEmitter* out, TaskContext*) {
          // A buggy reducer scribbling on the merged run in place.
          const_cast<K&>(group.front().first) += "!";
          out->Emit(key);
        });
  };
  ExpectViolation(&dfs, std::move(spec), "reducer mutated the group key");
}

TEST(ContractTest, CleanJobIsByteIdenticalWithChecksOnAndOff) {
  Dfs dfs;
  ASSERT_TRUE(
      dfs.WriteFile("in", {"a b a", "b c", "a", "", "c c c"}).ok());

  auto off = CheckedSpec("in", "out_off");
  off.check_contracts = false;
  Job<K, V> job_off(&dfs, off);
  auto m_off = job_off.Run();
  ASSERT_TRUE(m_off.ok()) << m_off.status().ToString();

  auto on = CheckedSpec("in", "out_on");
  Job<K, V> job_on(&dfs, on);
  auto m_on = job_on.Run();
  ASSERT_TRUE(m_on.ok()) << m_on.status().ToString();

  auto lines_off = dfs.ReadFile("out_off");
  auto lines_on = dfs.ReadFile("out_on");
  ASSERT_TRUE(lines_off.ok() && lines_on.ok());
  EXPECT_EQ(*lines_off.value(), *lines_on.value());

  // Checking is observable only in the metering.
  EXPECT_EQ(m_off->contract_checks, 0u);
  EXPECT_GT(m_on->contract_checks, 0u);
  EXPECT_EQ(m_off->counters.Get("contract.checks"), 0);
  EXPECT_EQ(m_on->counters.Get("contract.checks"),
            static_cast<int64_t>(m_on->contract_checks));
}

TEST(ContractTest, SampleEveryZeroIsRejected) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"a"}).ok());
  auto spec = CheckedSpec("in", "out");
  spec.contract_sample_every = 0;
  Job<K, V> job(&dfs, std::move(spec));
  auto metrics = job.Run();
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fj::mr
