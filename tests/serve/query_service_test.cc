// QueryService: bounded-queue admission control, batching, FIFO execution,
// and the epoch-validated LRU result cache.
#include "serve/query_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/executor.h"

namespace fj::serve {
namespace {

TokenSetRecord MakeRecord(uint64_t rid,
                          std::initializer_list<sim::TokenId> ids) {
  TokenSetRecord record{rid, ids};
  std::sort(record.tokens.begin(), record.tokens.end());
  return record;
}

Request InsertReq(uint64_t rid, std::initializer_list<sim::TokenId> ids) {
  Request request;
  request.kind = RequestKind::kInsert;
  request.record = MakeRecord(rid, ids);
  return request;
}

Request RemoveReq(uint64_t rid) {
  Request request;
  request.kind = RequestKind::kRemove;
  request.rid = rid;
  return request;
}

Request ProbeReq(std::initializer_list<sim::TokenId> ids, double tau) {
  Request request;
  request.kind = RequestKind::kProbeThreshold;
  request.record = MakeRecord(~uint64_t{0}, ids);
  request.threshold = tau;
  return request;
}

TEST(QueryServiceTest, ExecuteSyncRoundTrip) {
  ServingIndex index;
  Executor executor(2);
  QueryService service(&index, &executor);
  EXPECT_TRUE(service.ExecuteSync(InsertReq(1, {1, 2, 3, 4})).status.ok());
  EXPECT_TRUE(service.ExecuteSync(InsertReq(2, {1, 2, 3, 9})).status.ok());
  auto response = service.ExecuteSync(ProbeReq({1, 2, 3, 4}, 0.5));
  ASSERT_TRUE(response.status.ok());
  ASSERT_EQ(response.results.size(), 2u);
  EXPECT_EQ(response.results[0].rid, 1u);
  EXPECT_DOUBLE_EQ(response.results[0].similarity, 1.0);
  EXPECT_EQ(response.results[1].rid, 2u);
  EXPECT_DOUBLE_EQ(response.results[1].similarity, 0.6);
  EXPECT_GT(response.latency_seconds, 0.0);
  // Index errors come back through the response, not the admission path.
  auto bad = service.ExecuteSync(RemoveReq(42));
  EXPECT_EQ(bad.status.code(), StatusCode::kNotFound);
}

TEST(QueryServiceTest, CallbacksRunInFifoOrder) {
  ServingIndex index;
  Executor executor(4);
  std::vector<uint64_t> completions;
  Mutex mu{"test.completions"};
  {
    QueryService service(&index, &executor);
    for (uint64_t i = 0; i < 200; ++i) {
      Status status = service.Enqueue(
          InsertReq(i, {i, i + 1, i + 2}), [&, i](ServeResponse response) {
            EXPECT_TRUE(response.status.ok());
            MutexLock lock(&mu);
            completions.push_back(i);
          });
      ASSERT_TRUE(status.ok());
    }
    service.Flush();
  }
  ASSERT_EQ(completions.size(), 200u);
  EXPECT_TRUE(std::is_sorted(completions.begin(), completions.end()));
}

TEST(QueryServiceTest, FlushWaitsForEverything) {
  ServingIndex index;
  Executor executor(2);
  QueryService service(&index, &executor);
  std::atomic<size_t> done{0};
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(service
                    .Enqueue(InsertReq(i, {i, i + 1}),
                             [&](ServeResponse) { ++done; })
                    .ok());
  }
  service.Flush();
  EXPECT_EQ(done.load(), 64u);
  EXPECT_EQ(index.live_records(), 64u);
  auto stats = service.stats();
  EXPECT_EQ(stats.completed, 64u);
  EXPECT_EQ(stats.rejected(), 0u);
  EXPECT_EQ(stats.write_latency.count(), 64u);
}

TEST(QueryServiceTest, AdmissionRejectsOnQueueDepth) {
  ServingIndex index;
  Executor executor(1);
  QueryServiceOptions options;
  options.max_queue_depth = 8;
  options.auto_drain = false;  // fill the queue deterministically
  QueryService service(&index, &executor, options);
  size_t accepted = 0, rejected = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    Status status =
        service.Enqueue(InsertReq(i, {i, i + 1}), [](ServeResponse) {});
    if (status.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
      EXPECT_NE(status.message().find("queue is full"), std::string::npos);
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(rejected, 12u);
  auto stats = service.stats();
  EXPECT_EQ(stats.rejected_queue_depth, 12u);
  EXPECT_EQ(stats.accepted, 8u);
  // Draining frees the slots; admission recovers.
  EXPECT_EQ(service.DrainAll(), 8u);
  EXPECT_TRUE(
      service.Enqueue(InsertReq(100, {1, 2}), [](ServeResponse) {}).ok());
  service.DrainAll();
}

TEST(QueryServiceTest, AdmissionRejectsOnBytesInFlight) {
  ServingIndex index;
  Executor executor(1);
  QueryServiceOptions options;
  options.max_queue_depth = 1000;
  options.max_bytes_in_flight = 4096;
  options.auto_drain = false;
  QueryService service(&index, &executor, options);
  // Each request carries a large token payload.
  Request big;
  big.kind = RequestKind::kProbeThreshold;
  big.record.rid = ~uint64_t{0};
  for (sim::TokenId t = 0; t < 200; ++t) big.record.tokens.push_back(t);
  size_t rejected = 0;
  for (int i = 0; i < 20; ++i) {
    Status status = service.Enqueue(big, [](ServeResponse) {});
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
      EXPECT_NE(status.message().find("bytes"), std::string::npos);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(service.stats().rejected_bytes, rejected);
  service.DrainAll();
  // Completion released the bytes.
  EXPECT_TRUE(service.Enqueue(big, [](ServeResponse) {}).ok());
  service.DrainAll();
}

TEST(QueryServiceTest, RejectedRequestsNeverRunTheirCallback) {
  ServingIndex index;
  Executor executor(1);
  QueryServiceOptions options;
  options.max_queue_depth = 1;
  options.auto_drain = false;
  QueryService service(&index, &executor, options);
  std::atomic<int> calls{0};
  ASSERT_TRUE(service
                  .Enqueue(InsertReq(1, {1, 2}),
                           [&](ServeResponse) { ++calls; })
                  .ok());
  ASSERT_FALSE(service
                   .Enqueue(InsertReq(2, {1, 2}),
                            [&](ServeResponse) { ++calls; })
                   .ok());
  service.DrainAll();
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(index.live_records(), 1u);
}

TEST(QueryServiceTest, BatchingDrainsManyPerAcquisition) {
  ServingIndex index;
  Executor executor(1);
  QueryServiceOptions options;
  options.max_batch = 16;
  options.auto_drain = false;
  QueryService service(&index, &executor, options);
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        service.Enqueue(InsertReq(i, {i, i + 1}), [](ServeResponse) {}).ok());
  }
  EXPECT_EQ(service.DrainAll(), 50u);
  auto stats = service.stats();
  // 50 requests at batch 16 -> 16+16+16+2 = 4 batches.
  EXPECT_EQ(stats.batches, 4u);
  EXPECT_EQ(stats.batch_size.count(), 4u);
  EXPECT_NEAR(stats.batch_size.max_seconds() * 1e9, 16.0, 1.0);
}

TEST(QueryServiceTest, CacheHitsRepeatProbesAndInvalidatesOnWrite) {
  ServingIndex index;
  Executor executor(2);
  QueryService service(&index, &executor);
  ASSERT_TRUE(service.ExecuteSync(InsertReq(1, {1, 2, 3, 4})).status.ok());

  auto first = service.ExecuteSync(ProbeReq({1, 2, 3, 4}, 0.5));
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);
  auto second = service.ExecuteSync(ProbeReq({1, 2, 3, 4}, 0.5));
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.results, first.results);
  // A different threshold is a different cache entry.
  auto other = service.ExecuteSync(ProbeReq({1, 2, 3, 4}, 0.9));
  EXPECT_FALSE(other.cache_hit);

  // Any write moves the epoch: the cached answer would now be wrong.
  ASSERT_TRUE(service.ExecuteSync(InsertReq(2, {1, 2, 3, 9})).status.ok());
  auto after_write = service.ExecuteSync(ProbeReq({1, 2, 3, 4}, 0.5));
  ASSERT_TRUE(after_write.status.ok());
  EXPECT_FALSE(after_write.cache_hit);
  ASSERT_EQ(after_write.results.size(), 2u);  // sees the new record
  auto stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_GE(stats.cache_stale, 1u);
}

TEST(QueryServiceTest, CompactionDoesNotInvalidateTheCache) {
  ServingIndex index;
  Executor executor(2);
  QueryService service(&index, &executor);
  ASSERT_TRUE(service.ExecuteSync(InsertReq(1, {1, 2, 3})).status.ok());
  ASSERT_TRUE(service.ExecuteSync(InsertReq(2, {1, 2, 3})).status.ok());
  ASSERT_TRUE(service.ExecuteSync(InsertReq(3, {7, 8, 9})).status.ok());
  ASSERT_TRUE(service.ExecuteSync(RemoveReq(3)).status.ok());
  auto first = service.ExecuteSync(ProbeReq({1, 2, 3}, 0.5));
  ASSERT_TRUE(first.status.ok());
  service.Flush();
  index.CompactNow();  // answers unchanged, epoch unchanged
  auto second = service.ExecuteSync(ProbeReq({1, 2, 3}, 0.5));
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.results, first.results);
}

TEST(QueryServiceTest, CacheCapacityZeroDisablesCaching) {
  ServingIndex index;
  Executor executor(1);
  QueryServiceOptions options;
  options.cache_capacity = 0;
  QueryService service(&index, &executor, options);
  ASSERT_TRUE(service.ExecuteSync(InsertReq(1, {1, 2, 3})).status.ok());
  EXPECT_FALSE(service.ExecuteSync(ProbeReq({1, 2, 3}, 0.5)).cache_hit);
  EXPECT_FALSE(service.ExecuteSync(ProbeReq({1, 2, 3}, 0.5)).cache_hit);
  auto stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);  // lookups are skipped entirely
}

TEST(QueryServiceTest, CacheEvictsLeastRecentlyUsed) {
  ServingIndex index;
  Executor executor(1);
  QueryServiceOptions options;
  options.cache_capacity = 2;
  QueryService service(&index, &executor, options);
  ASSERT_TRUE(service.ExecuteSync(InsertReq(1, {1, 2, 3})).status.ok());
  EXPECT_FALSE(service.ExecuteSync(ProbeReq({1, 2, 3}, 0.5)).cache_hit);
  EXPECT_FALSE(service.ExecuteSync(ProbeReq({1, 2, 3}, 0.6)).cache_hit);
  EXPECT_FALSE(service.ExecuteSync(ProbeReq({1, 2, 3}, 0.7)).cache_hit);
  // 0.5 was evicted (capacity 2, LRU); 0.6 and 0.7 survive.
  EXPECT_TRUE(service.ExecuteSync(ProbeReq({1, 2, 3}, 0.7)).cache_hit);
  EXPECT_TRUE(service.ExecuteSync(ProbeReq({1, 2, 3}, 0.6)).cache_hit);
  EXPECT_FALSE(service.ExecuteSync(ProbeReq({1, 2, 3}, 0.5)).cache_hit);
}

TEST(QueryServiceTest, TopKThroughTheService) {
  ServingIndex index;
  Executor executor(2);
  QueryService service(&index, &executor);
  ASSERT_TRUE(service.ExecuteSync(InsertReq(1, {1, 2, 3, 4})).status.ok());
  ASSERT_TRUE(service.ExecuteSync(InsertReq(2, {1, 2, 3, 9})).status.ok());
  ASSERT_TRUE(service.ExecuteSync(InsertReq(3, {1, 2, 8, 9})).status.ok());
  Request request;
  request.kind = RequestKind::kProbeTopK;
  request.record = MakeRecord(~uint64_t{0}, {1, 2, 3, 4});
  request.top_k = 2;
  auto response = service.ExecuteSync(request);
  ASSERT_TRUE(response.status.ok());
  ASSERT_EQ(response.results.size(), 2u);
  EXPECT_EQ(response.results[0].rid, 1u);
  EXPECT_EQ(response.results[1].rid, 2u);
  // TopK answers cache too, keyed on k rather than threshold.
  EXPECT_TRUE(service.ExecuteSync(request).cache_hit);
  request.top_k = 3;
  EXPECT_FALSE(service.ExecuteSync(request).cache_hit);
}

TEST(QueryServiceTest, ConcurrentEnqueueFromManyThreadsCompletes) {
  ServingIndex index;
  Executor executor(4);
  QueryServiceOptions options;
  options.max_queue_depth = 100000;
  QueryService service(&index, &executor, options);
  // Seed, then hammer probes from executor tasks (any-thread enqueue).
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        service.ExecuteSync(InsertReq(i, {i, i + 1, i + 2})).status.ok());
  }
  std::atomic<size_t> done{0};
  std::atomic<size_t> accepted{0};
  {
    TaskGroup group(&executor);
    for (int t = 0; t < 8; ++t) {
      group.Spawn([&] {
        for (uint64_t i = 0; i < 100; ++i) {
          Request probe = ProbeReq({i % 50, i % 50 + 1, i % 50 + 2}, 0.5);
          if (service.Enqueue(probe, [&](ServeResponse response) {
                         EXPECT_TRUE(response.status.ok());
                         ++done;
                       })
                  .ok()) {
            ++accepted;
          }
        }
      });
    }
    ASSERT_TRUE(group.Wait().ok());
  }
  service.Flush();
  EXPECT_EQ(done.load(), accepted.load());
  EXPECT_EQ(accepted.load(), 800u);
  auto stats = service.stats();
  EXPECT_EQ(stats.completed, 850u);
  EXPECT_GT(stats.cache_hits, 0u);  // repeated probes hit
}

TEST(QueryServiceTest, AdmissionRacingCompactionKeepsCacheEpochStable) {
  // Producers keep enqueuing probes while the owner thread runs repeated
  // flush+compact cycles — the serving tier's steady state. Compaction
  // rewrites the index arena but MUST NOT advance the write epoch: every
  // cached result stays valid across the race (cache_stale == 0), repeat
  // probes keep hitting, and no accepted request is lost or answered
  // wrong.
  ServingIndex index;
  Executor executor(4);
  QueryServiceOptions options;
  options.max_queue_depth = 100000;
  QueryService service(&index, &executor, options);
  for (uint64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        service.ExecuteSync(InsertReq(i, {i, i + 1, i + 2})).status.ok());
  }
  // Tombstones give the compactor real work to do each cycle.
  for (uint64_t i = 30; i < 40; ++i) {
    ASSERT_TRUE(service.ExecuteSync(RemoveReq(i)).status.ok());
  }
  const uint64_t epoch_before = index.write_epoch();

  std::atomic<size_t> done{0};
  std::atomic<size_t> accepted{0};
  std::atomic<bool> stop{false};
  {
    TaskGroup group(&executor);
    for (int t = 0; t < 3; ++t) {
      group.Spawn([&] {
        // A tight, repeating probe set so the cache is exercised hard.
        for (uint64_t i = 0; i < 200; ++i) {
          Request probe = ProbeReq({i % 10, i % 10 + 1, i % 10 + 2}, 0.5);
          if (service.Enqueue(probe, [&](ServeResponse response) {
                         EXPECT_TRUE(response.status.ok());
                         ++done;
                       })
                  .ok()) {
            ++accepted;
          }
        }
        stop.store(true);
      });
    }
    // The compaction loop races the producers: each cycle drains what was
    // admitted so far, then compacts.
    while (!stop.load()) {
      service.Flush();
      index.CompactNow();
    }
    ASSERT_TRUE(group.Wait().ok());
  }
  service.Flush();
  index.CompactNow();

  EXPECT_EQ(done.load(), accepted.load());
  EXPECT_EQ(accepted.load(), 600u);
  // The epoch only moves on writes; compaction cycles left it alone, so
  // no cache entry was ever invalidated by the race.
  EXPECT_EQ(index.write_epoch(), epoch_before);
  auto stats = service.stats();
  EXPECT_EQ(stats.cache_stale, 0u);
  EXPECT_GT(stats.cache_hits, 0u);
  // And a probe after the dust settles still hits the pre-race cache.
  auto response = service.ExecuteSync(ProbeReq({0, 1, 2}, 0.5));
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.cache_hit);
}

}  // namespace
}  // namespace fj::serve
