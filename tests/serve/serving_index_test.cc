// ServingIndex correctness invariants:
//   * ProbeThreshold is set-identical to the offline batch join for the
//     same (record, threshold);
//   * any interleaving of Insert / Remove / compaction answers exactly
//     like an index rebuilt from scratch over the surviving records —
//     swept over operation orders and compaction trigger points;
//   * ProbeTopK is the sorted-truncated exact answer at the floor;
//   * ProbeApprox is a perfect-precision subset of the exact answer;
//   * snapshots round-trip into an index that answers identically.
#include "serve/serving_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "ppjoin/naive.h"
#include "ppjoin/ppjoin.h"

namespace fj::serve {
namespace {

using ppjoin::NaiveSelfJoin;
using ppjoin::SimilarPair;
using sim::SimilarityFunction;
using sim::SimilaritySpec;

TokenSetRecord MakeRecord(uint64_t rid,
                          std::initializer_list<sim::TokenId> ids) {
  TokenSetRecord record{rid, ids};
  std::sort(record.tokens.begin(), record.tokens.end());
  record.tokens.erase(
      std::unique(record.tokens.begin(), record.tokens.end()),
      record.tokens.end());
  return record;
}

std::vector<TokenSetRecord> RandomRecords(size_t n, uint64_t seed,
                                          size_t universe = 120) {
  Rng rng(seed);
  std::vector<TokenSetRecord> records;
  for (size_t i = 0; i < n; ++i) {
    TokenSetRecord record;
    record.rid = 1000 + i;
    if (!records.empty() && rng.NextBool(0.4)) {
      // Mutate an earlier record so high-similarity pairs exist.
      record.tokens = records[rng.NextBelow(records.size())].tokens;
      if (record.tokens.size() > 2 && rng.NextBool(0.5)) {
        record.tokens.erase(record.tokens.begin() +
                            static_cast<ptrdiff_t>(
                                rng.NextBelow(record.tokens.size())));
      }
      if (rng.NextBool(0.5)) record.tokens.push_back(universe + i);
    } else {
      size_t len = 4 + rng.NextBelow(10);
      while (record.tokens.size() < len) {
        record.tokens.push_back(rng.NextBelow(universe));
        std::sort(record.tokens.begin(), record.tokens.end());
        record.tokens.erase(
            std::unique(record.tokens.begin(), record.tokens.end()),
            record.tokens.end());
      }
    }
    std::sort(record.tokens.begin(), record.tokens.end());
    record.tokens.erase(
        std::unique(record.tokens.begin(), record.tokens.end()),
        record.tokens.end());
    records.push_back(std::move(record));
  }
  return records;
}

/// The batch join's answer for `probe` at `tau`, as ProbeThreshold results
/// (rid ascending), derived from the naive all-pairs join.
std::vector<ProbeResult> BatchAnswer(const std::vector<TokenSetRecord>& all,
                                     const TokenSetRecord& probe,
                                     const SimilaritySpec& spec) {
  std::vector<TokenSetRecord> corpus = all;
  corpus.push_back(probe);
  std::vector<ProbeResult> expected;
  for (const SimilarPair& pair : NaiveSelfJoin(corpus, spec)) {
    if (pair.rid1 == probe.rid && pair.rid2 != probe.rid) {
      expected.push_back({pair.rid2, pair.similarity});
    } else if (pair.rid2 == probe.rid && pair.rid1 != probe.rid) {
      expected.push_back({pair.rid1, pair.similarity});
    }
  }
  std::sort(expected.begin(), expected.end(),
            [](const ProbeResult& a, const ProbeResult& b) {
              return a.rid < b.rid;
            });
  return expected;
}

TEST(ServingIndexTest, ProbeThresholdMatchesOfflineBatchJoin) {
  auto records = RandomRecords(120, 17);
  for (double tau : {0.5, 0.6, 0.8, 0.9}) {
    ServingIndexOptions options;
    options.tau_floor = 0.5;
    ServingIndex index(options);
    for (const auto& record : records) {
      ASSERT_TRUE(index.Insert(record).ok());
    }
    SimilaritySpec spec(SimilarityFunction::kJaccard, tau);
    for (const auto& probe : records) {
      // Probing with an indexed rid must exclude the record itself.
      std::vector<TokenSetRecord> others;
      for (const auto& r : records) {
        if (r.rid != probe.rid) others.push_back(r);
      }
      std::vector<ProbeResult> got;
      ASSERT_TRUE(index.ProbeThreshold(probe, tau, &got).ok());
      EXPECT_EQ(got, BatchAnswer(others, probe, spec))
          << "rid=" << probe.rid << " tau=" << tau;
    }
  }
}

TEST(ServingIndexTest, CosineAndDiceProbesMatchBatch) {
  auto records = RandomRecords(60, 23);
  for (auto function :
       {SimilarityFunction::kCosine, SimilarityFunction::kDice}) {
    ServingIndexOptions options;
    options.function = function;
    options.tau_floor = 0.6;
    ServingIndex index(options);
    for (const auto& record : records) {
      ASSERT_TRUE(index.Insert(record).ok());
    }
    SimilaritySpec spec(function, 0.7);
    for (const auto& probe : records) {
      std::vector<TokenSetRecord> others;
      for (const auto& r : records) {
        if (r.rid != probe.rid) others.push_back(r);
      }
      std::vector<ProbeResult> got;
      ASSERT_TRUE(index.ProbeThreshold(probe, 0.7, &got).ok());
      EXPECT_EQ(got, BatchAnswer(others, probe, spec)) << probe.rid;
    }
  }
}

/// Rebuilds an index from the live set and checks that `index` answers
/// identically for every probe in `probes` at the floor.
void ExpectEquivalentToRebuild(ServingIndex* index,
                               const std::vector<TokenSetRecord>& probes,
                               double tau) {
  std::vector<TokenSetRecord> live;
  index->ExportLive(&live);
  ServingIndex fresh(index->options());
  for (const auto& record : live) ASSERT_TRUE(fresh.Insert(record).ok());
  for (const auto& probe : probes) {
    std::vector<ProbeResult> got, want;
    ASSERT_TRUE(index->ProbeThreshold(probe, tau, &got).ok());
    ASSERT_TRUE(fresh.ProbeThreshold(probe, tau, &want).ok());
    EXPECT_EQ(got, want) << "probe rid=" << probe.rid;
  }
}

TEST(ServingIndexTest, StreamingMutationsEquivalentToRebuild) {
  // Sweep operation orders (seed) and compaction trigger points: never
  // (fraction out of range), eager (0.1), and lazy (0.9) — plus explicit
  // CompactNow calls mid-stream.
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (double fraction : {2.0, 0.1, 0.9}) {
      auto records = RandomRecords(80, 100 + seed);
      ServingIndexOptions options;
      options.tau_floor = 0.5;
      options.compact_tombstone_fraction = fraction;
      ServingIndex index(options);
      Rng rng(seed);
      std::vector<TokenSetRecord> inserted;
      size_t next = 0;
      for (int step = 0; step < 160; ++step) {
        if (next < records.size() && (inserted.empty() || rng.NextBool(0.6))) {
          ASSERT_TRUE(index.Insert(records[next]).ok());
          inserted.push_back(records[next]);
          ++next;
        } else if (!inserted.empty()) {
          size_t victim = rng.NextBelow(inserted.size());
          ASSERT_TRUE(index.Remove(inserted[victim].rid).ok());
          inserted.erase(inserted.begin() +
                         static_cast<ptrdiff_t>(victim));
        }
        if (step % 37 == 36) index.CompactNow();
        if (step % 40 == 39) {
          ExpectEquivalentToRebuild(&index, records, 0.5);
        }
      }
      ExpectEquivalentToRebuild(&index, records, 0.5);
      if (fraction == 0.1) {
        EXPECT_GT(index.stats().compactions, 0u);
        EXPECT_GT(index.stats().tombstones_purged, 0u);
      }
    }
  }
}

TEST(ServingIndexTest, CompactionPreservesEpochAndAnswers) {
  ServingIndexOptions options;
  options.compact_tombstone_fraction = 2.0;  // manual compaction only
  ServingIndex index(options);
  auto records = RandomRecords(40, 5);
  for (const auto& record : records) {
    ASSERT_TRUE(index.Insert(record).ok());
  }
  for (size_t i = 0; i < records.size(); i += 3) {
    ASSERT_TRUE(index.Remove(records[i].rid).ok());
  }
  const uint64_t epoch = index.write_epoch();
  std::vector<ProbeResult> before, after;
  ASSERT_TRUE(index.ProbeThreshold(records[1], 0.5, &before).ok());
  EXPECT_GT(index.tombstones(), 0u);
  index.CompactNow();
  EXPECT_EQ(index.tombstones(), 0u);
  EXPECT_EQ(index.write_epoch(), epoch)
      << "compaction must not invalidate caches";
  EXPECT_EQ(index.arena_tokens(), index.live_tokens());
  ASSERT_TRUE(index.ProbeThreshold(records[1], 0.5, &after).ok());
  EXPECT_EQ(before, after);
}

TEST(ServingIndexTest, ProbeBelowFloorIsRefused) {
  ServingIndexOptions options;
  options.tau_floor = 0.7;
  ServingIndex index(options);
  ASSERT_TRUE(index.Insert(MakeRecord(1, {1, 2, 3})).ok());
  std::vector<ProbeResult> out;
  Status status = index.ProbeThreshold(MakeRecord(9, {1, 2, 3}), 0.5, &out);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // At the floor itself the probe is served.
  EXPECT_TRUE(index.ProbeThreshold(MakeRecord(9, {1, 2, 3}), 0.7, &out).ok());
}

TEST(ServingIndexTest, WriteValidation) {
  ServingIndex index;
  EXPECT_EQ(index.Insert({1, {}}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(index.Insert({1, {5, 3}}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(index.Insert({1, {3, 3, 5}}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(index.Insert(MakeRecord(1, {1, 2, 3})).ok());
  EXPECT_EQ(index.Insert(MakeRecord(1, {4, 5, 6})).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(index.Remove(99).code(), StatusCode::kNotFound);
  ASSERT_TRUE(index.Remove(1).ok());
  EXPECT_EQ(index.Remove(1).code(), StatusCode::kNotFound);
  // A removed rid can be inserted again.
  EXPECT_TRUE(index.Insert(MakeRecord(1, {4, 5, 6})).ok());
}

TEST(ServingIndexTest, TopKIsSortedTruncatedExactAnswer) {
  auto records = RandomRecords(100, 31);
  ServingIndexOptions options;
  options.tau_floor = 0.5;
  ServingIndex index(options);
  for (const auto& record : records) {
    ASSERT_TRUE(index.Insert(record).ok());
  }
  for (size_t k : {1u, 3u, 10u, 1000u}) {
    for (size_t p = 0; p < records.size(); p += 7) {
      const auto& probe = records[p];
      std::vector<ProbeResult> all, topk;
      ASSERT_TRUE(index.ProbeThreshold(probe, options.tau_floor, &all).ok());
      ASSERT_TRUE(index.ProbeTopK(probe, k, &topk).ok());
      std::stable_sort(all.begin(), all.end(),
                       [](const ProbeResult& a, const ProbeResult& b) {
                         if (a.similarity != b.similarity) {
                           return a.similarity > b.similarity;
                         }
                         return a.rid < b.rid;
                       });
      if (all.size() > k) all.resize(k);
      EXPECT_EQ(topk, all) << "rid=" << probe.rid << " k=" << k;
    }
  }
}

TEST(ServingIndexTest, TopKZeroIsEmpty) {
  ServingIndex index;
  ASSERT_TRUE(index.Insert(MakeRecord(1, {1, 2, 3})).ok());
  std::vector<ProbeResult> out{{7, 0.5}};
  ASSERT_TRUE(index.ProbeTopK(MakeRecord(9, {1, 2, 3}), 0, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(ServingIndexTest, ApproxProbeIsPerfectPrecisionSubset) {
  auto records = RandomRecords(150, 41);
  ServingIndexOptions options;
  options.tau_floor = 0.5;
  options.lsh_preroute = true;
  options.lsh.num_bands = 24;
  options.lsh.rows_per_band = 4;
  ServingIndex index(options);
  for (const auto& record : records) {
    ASSERT_TRUE(index.Insert(record).ok());
  }
  size_t exact_total = 0, approx_total = 0;
  for (const auto& probe : records) {
    std::vector<ProbeResult> exact, approx;
    ASSERT_TRUE(index.ProbeThreshold(probe, 0.8, &exact).ok());
    ASSERT_TRUE(index.ProbeApprox(probe, 0.8, &approx).ok());
    // Precision 1: every approximate answer is in the exact answer,
    // with the same (exactly computed) similarity.
    std::map<uint64_t, double> exact_by_rid;
    for (const auto& r : exact) exact_by_rid[r.rid] = r.similarity;
    for (const auto& r : approx) {
      auto it = exact_by_rid.find(r.rid);
      ASSERT_NE(it, exact_by_rid.end()) << "false positive rid " << r.rid;
      EXPECT_DOUBLE_EQ(it->second, r.similarity);
    }
    exact_total += exact.size();
    approx_total += approx.size();
  }
  ASSERT_GT(exact_total, 20u);
  // Recall is high at 24x4 and tau 0.8 (P(candidate) ~ 1).
  EXPECT_GT(static_cast<double>(approx_total),
            0.9 * static_cast<double>(exact_total));
}

TEST(ServingIndexTest, ApproxProbeRequiresLshPreroute) {
  ServingIndex index;  // lsh_preroute off
  ASSERT_TRUE(index.Insert(MakeRecord(1, {1, 2, 3})).ok());
  std::vector<ProbeResult> out;
  EXPECT_EQ(index.ProbeApprox(MakeRecord(9, {1, 2, 3}), 0.8, &out).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ServingIndexTest, ApproxProbeSurvivesMutationsAndCompaction) {
  ServingIndexOptions options;
  options.lsh_preroute = true;
  options.lsh.num_bands = 24;
  options.lsh.rows_per_band = 4;
  options.compact_tombstone_fraction = 0.3;
  ServingIndex index(options);
  auto records = RandomRecords(80, 53);
  for (const auto& record : records) {
    ASSERT_TRUE(index.Insert(record).ok());
  }
  for (size_t i = 0; i < records.size(); i += 2) {
    ASSERT_TRUE(index.Remove(records[i].rid).ok());
  }
  EXPECT_GT(index.stats().compactions, 0u);
  for (const auto& probe : records) {
    std::vector<ProbeResult> exact, approx;
    ASSERT_TRUE(index.ProbeThreshold(probe, 0.8, &exact).ok());
    ASSERT_TRUE(index.ProbeApprox(probe, 0.8, &approx).ok());
    std::set<uint64_t> exact_rids;
    for (const auto& r : exact) exact_rids.insert(r.rid);
    for (const auto& r : approx) {
      EXPECT_TRUE(exact_rids.count(r.rid)) << r.rid;
    }
  }
}

TEST(ServingIndexTest, SnapshotRoundTripAnswersIdentically) {
  auto records = RandomRecords(60, 67);
  ServingIndexOptions options;
  options.tau_floor = 0.55;
  options.function = SimilarityFunction::kJaccard;
  options.lsh_preroute = true;
  ServingIndex index(options);
  for (const auto& record : records) {
    ASSERT_TRUE(index.Insert(record).ok());
  }
  for (size_t i = 0; i < records.size(); i += 5) {
    ASSERT_TRUE(index.Remove(records[i].rid).ok());
  }
  text::TokenOrdering ordering = text::TokenOrdering::FromCounts(
      {{"alpha", 1}, {"beta", 2}, {"gamma", 3}});
  auto blocks = SaveSnapshot(index, ordering);
  auto loaded = LoadSnapshot(blocks);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->index->live_records(), index.live_records());
  EXPECT_EQ(loaded->ordering.size(), ordering.size());
  EXPECT_DOUBLE_EQ(loaded->index->options().tau_floor, 0.55);
  EXPECT_TRUE(loaded->index->options().lsh_preroute);
  for (const auto& probe : records) {
    std::vector<ProbeResult> got, want;
    ASSERT_TRUE(index.ProbeThreshold(probe, 0.6, &got).ok());
    ASSERT_TRUE(loaded->index->ProbeThreshold(probe, 0.6, &want).ok());
    EXPECT_EQ(got, want) << probe.rid;
  }
}

TEST(ServingIndexTest, SnapshotRejectsCorruptBlocks) {
  ServingIndex index;
  ASSERT_TRUE(index.Insert(MakeRecord(1, {1, 2, 3})).ok());
  auto blocks = SaveSnapshot(index, text::TokenOrdering());
  {
    auto bad = blocks;
    bad[0][0] ^= 0x5a;  // clobber the magic
    EXPECT_FALSE(LoadSnapshot(bad).ok());
  }
  {
    auto bad = blocks;
    bad.pop_back();  // drop a record block
    EXPECT_FALSE(LoadSnapshot(bad).ok());
  }
  EXPECT_FALSE(LoadSnapshot({}).ok());
}

TEST(ServingIndexTest, BuildFromJoinOutputProbesLikeTheCorpus) {
  // Seed from data::Record lines with a derived ordering, then probe the
  // exact title text of a record: it must come back at similarity 1.
  std::vector<std::string> record_lines = {
      "1\tparallel set similarity joins\tvernica carey li\t",
      "2\tparallel set similarity joins\tvernica carey\t",
      "3\tefficient graph processing\tsmith jones\t",
  };
  text::WordTokenizer tokenizer;
  ServingIndexOptions options;
  options.tau_floor = 0.5;
  auto seeded = BuildFromJoinOutput({}, record_lines, tokenizer, options);
  ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
  ASSERT_EQ(seeded->index->live_records(), 3u);
  TokenSetRecord probe;
  probe.rid = 999;
  probe.tokens = seeded->ordering.ToSortedIds(
      tokenizer.Tokenize("parallel set similarity joins vernica carey li"));
  std::vector<ProbeResult> out;
  ASSERT_TRUE(seeded->index->ProbeThreshold(probe, 0.5, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rid, 1u);
  EXPECT_DOUBLE_EQ(out[0].similarity, 1.0);
  EXPECT_EQ(out[1].rid, 2u);
  EXPECT_NEAR(out[1].similarity, 6.0 / 7.0, 1e-12);
}

TEST(ServingIndexTest, ProbeStatsAccount) {
  ServingIndex index;
  auto records = RandomRecords(50, 71);
  for (const auto& record : records) {
    ASSERT_TRUE(index.Insert(record).ok());
  }
  std::vector<ProbeResult> out;
  for (const auto& probe : records) {
    ASSERT_TRUE(index.ProbeThreshold(probe, 0.8, &out).ok());
  }
  const auto& stats = index.stats();
  EXPECT_EQ(stats.inserts, records.size());
  EXPECT_EQ(stats.probes, records.size());
  EXPECT_GT(stats.candidates, 0u);
  EXPECT_GE(stats.candidates,
            stats.positional_pruned + stats.bitmap_pruned + stats.verified);
  EXPECT_GE(stats.verified, stats.results);
}

}  // namespace
}  // namespace fj::serve
