// Footnote-2 alternative: routing by length ranges instead of prefix
// tokens must still produce exactly the ground-truth join result — the
// paper rejected it for *performance* (length skew), not correctness.
#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"

namespace fj::join {
namespace {

std::set<std::pair<uint64_t, uint64_t>> Pairs(mr::Dfs* dfs,
                                              const std::string& prefix,
                                              const JoinConfig& config) {
  std::set<std::pair<uint64_t, uint64_t>> pairs;
  auto result = RunSelfJoin(dfs, "records", prefix, config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return pairs;
  auto joined = ReadJoinedPairs(*dfs, result->output_file);
  EXPECT_TRUE(joined.ok());
  for (const auto& jp : *joined) pairs.emplace(jp.first.rid, jp.second.rid);
  return pairs;
}

TEST(LengthSignaturesTest, MatchesPrefixRoutedResult) {
  auto config = data::DblpLikeConfig(300, 111);
  config.payload_bytes = 8;
  config.title_tokens_min = 3;
  config.title_tokens_max = 20;
  auto records = data::GenerateRecords(config);
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());

  JoinConfig prefix_routed;
  prefix_routed.stage2 = Stage2Algorithm::kBK;
  auto expected = Pairs(&dfs, "prefix", prefix_routed);
  ASSERT_FALSE(expected.empty());

  for (uint32_t width : {1u, 2u, 8u}) {
    JoinConfig length_routed = prefix_routed;
    length_routed.routing = TokenRouting::kLengthSignatures;
    length_routed.length_class_width = width;
    EXPECT_EQ(Pairs(&dfs, "len" + std::to_string(width), length_routed),
              expected)
        << "width " << width;
  }
}

TEST(LengthSignaturesTest, GeneratesMoreCandidatesThanPrefixRouting) {
  // The reason the paper rejected it: without the prefix filter every
  // same-length-range pair is a candidate.
  auto gen_config = data::DblpLikeConfig(400, 112);
  gen_config.payload_bytes = 8;
  auto records = data::GenerateRecords(gen_config);
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());

  auto run_counting = [&](TokenRouting routing, const std::string& prefix) {
    JoinConfig config;
    config.stage2 = Stage2Algorithm::kBK;
    config.routing = routing;
    config.length_class_width = 2;
    auto result = RunSelfJoin(&dfs, "records", prefix, config);
    EXPECT_TRUE(result.ok());
    return result->stages[1].jobs[0].counters.Get(
        "stage2.bk.pairs_considered");
  };
  int64_t prefix_candidates =
      run_counting(TokenRouting::kIndividualTokens, "p");
  int64_t length_candidates =
      run_counting(TokenRouting::kLengthSignatures, "l");
  EXPECT_GT(length_candidates, 2 * prefix_candidates);
}

TEST(LengthSignaturesTest, ValidationRules) {
  JoinConfig config;
  config.routing = TokenRouting::kLengthSignatures;
  config.stage2 = Stage2Algorithm::kPK;
  EXPECT_FALSE(config.Validate().ok());
  config.stage2 = Stage2Algorithm::kBK;
  EXPECT_TRUE(config.Validate().ok());
  config.block_processing = BlockProcessing::kReduceBased;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(LengthSignaturesTest, RejectedForRSJoins) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("r", {"1\tt a b\tx\tp"}).ok());
  ASSERT_TRUE(dfs.WriteFile("s", {"2\tt a b\ty\tp"}).ok());
  JoinConfig config;
  config.routing = TokenRouting::kLengthSignatures;
  config.stage2 = Stage2Algorithm::kBK;
  auto result = RunRSJoin(&dfs, "r", "s", "out", config);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fj::join
