// Pipeline-level fault-recovery golden tests: the full three-stage join —
// self and R-S, every algorithm name, with and without spilling — must
// produce byte-identical output under any recoverable fault plan
// (crashes retried, stragglers speculated) as in the fault-free run. A
// permanent fault scoped to one stage's job must fail the whole pipeline
// with a clean Status and write no join output.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"

namespace fj::join {
namespace {

std::vector<std::string> SelfInputLines() {
  auto config = data::DblpLikeConfig(250, 11);
  config.payload_bytes = 24;
  return data::RecordsToLines(data::GenerateRecords(config));
}

std::vector<std::string> OuterInputLines() {
  auto config = data::CiteseerxLikeConfig(180, 29);
  config.payload_bytes = 24;
  return data::RecordsToLines(data::GenerateRecords(config));
}

JoinConfig BaseConfig(Stage1Algorithm s1, Stage2Algorithm s2,
                      Stage3Algorithm s3, uint64_t sort_buffer) {
  JoinConfig config;
  config.stage1 = s1;
  config.stage2 = s2;
  config.stage3 = s3;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 3;
  config.sort_buffer_bytes = sort_buffer;
  return config;
}

// A plan that exercises every recovery path: most attempts crash early,
// half the tasks straggle hard enough to draw speculative backups.
std::shared_ptr<const mr::FaultPlan> ChaosPlan() {
  auto plan = std::make_shared<mr::FaultPlan>();
  plan->seed = 13;
  plan->crash_probability = 0.6;
  plan->crash_after_records = 4;
  plan->crash_failing_attempts = 2;
  plan->straggler_probability = 0.4;
  plan->straggler_extra_seconds = 25.0;
  return plan;
}

const std::vector<std::string>& Lines(const mr::Dfs& dfs,
                                      const std::string& file) {
  auto lines = dfs.ReadFile(file);
  EXPECT_TRUE(lines.ok());
  return *lines.value();
}

uint64_t TotalFailedAttempts(const JoinRunResult& result) {
  uint64_t failed = 0;
  for (const auto& stage : result.stages) {
    for (const auto& job : stage.jobs) failed += job.failed_attempts;
  }
  return failed;
}

void RunSelfGoldenCase(Stage1Algorithm s1, Stage2Algorithm s2,
                       Stage3Algorithm s3, uint64_t sort_buffer) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());

  auto clean_config = BaseConfig(s1, s2, s3, sort_buffer);
  auto clean = RunSelfJoin(&dfs, "records", "clean", clean_config);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  auto faulted_config = BaseConfig(s1, s2, s3, sort_buffer);
  faulted_config.fault_plan = ChaosPlan();
  faulted_config.speculative_execution = true;
  ASSERT_TRUE(
      faulted_config.fault_plan->RecoverableWith(faulted_config.max_task_attempts));
  auto faulted = RunSelfJoin(&dfs, "records", "faulted", faulted_config);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();

  // The plan actually hurt: tasks crashed and were retried...
  EXPECT_GT(TotalFailedAttempts(*faulted), 0u);
  // ...and the join plus every kept intermediate is still byte-identical.
  EXPECT_EQ(Lines(dfs, clean->output_file), Lines(dfs, faulted->output_file));
  EXPECT_EQ(Lines(dfs, clean->ordering_file),
            Lines(dfs, faulted->ordering_file));
  EXPECT_EQ(Lines(dfs, clean->rid_pairs_file),
            Lines(dfs, faulted->rid_pairs_file));
}

void RunRSGoldenCase(Stage1Algorithm s1, Stage2Algorithm s2,
                     Stage3Algorithm s3, uint64_t sort_buffer) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("r", SelfInputLines()).ok());
  ASSERT_TRUE(dfs.WriteFile("s", OuterInputLines()).ok());

  auto clean_config = BaseConfig(s1, s2, s3, sort_buffer);
  auto clean = RunRSJoin(&dfs, "r", "s", "clean", clean_config);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  auto faulted_config = BaseConfig(s1, s2, s3, sort_buffer);
  faulted_config.fault_plan = ChaosPlan();
  faulted_config.speculative_execution = true;
  auto faulted = RunRSJoin(&dfs, "r", "s", "faulted", faulted_config);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();

  EXPECT_GT(TotalFailedAttempts(*faulted), 0u);
  EXPECT_EQ(Lines(dfs, clean->output_file), Lines(dfs, faulted->output_file));
  EXPECT_EQ(Lines(dfs, clean->rid_pairs_file),
            Lines(dfs, faulted->rid_pairs_file));
}

// Four combos cover all six algorithm names; spilling alternates so both
// shuffle paths run under faults.
TEST(FaultPipelineTest, SelfBtoBkBrjUnbounded) {
  RunSelfGoldenCase(Stage1Algorithm::kBTO, Stage2Algorithm::kBK,
                    Stage3Algorithm::kBRJ, 0);
}

TEST(FaultPipelineTest, SelfBtoPkOprjSpilling) {
  RunSelfGoldenCase(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                    Stage3Algorithm::kOPRJ, 256);
}

TEST(FaultPipelineTest, SelfOptoPkBrjSpilling) {
  RunSelfGoldenCase(Stage1Algorithm::kOPTO, Stage2Algorithm::kPK,
                    Stage3Algorithm::kBRJ, 256);
}

TEST(FaultPipelineTest, SelfOptoBkOprjUnbounded) {
  RunSelfGoldenCase(Stage1Algorithm::kOPTO, Stage2Algorithm::kBK,
                    Stage3Algorithm::kOPRJ, 0);
}

TEST(FaultPipelineTest, RSBtoPkBrjUnbounded) {
  RunRSGoldenCase(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                  Stage3Algorithm::kBRJ, 0);
}

TEST(FaultPipelineTest, RSOptoBkOprjSpilling) {
  RunRSGoldenCase(Stage1Algorithm::kOPTO, Stage2Algorithm::kBK,
                  Stage3Algorithm::kOPRJ, 256);
}

TEST(FaultPipelineTest, PermanentStageFaultFailsPipelineCleanly) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());

  auto plan = std::make_shared<mr::FaultPlan>();
  // Only the kernel job's reduce task 0 is cursed — stage 1 completes,
  // stage 2 exhausts its attempts, stage 3 never runs.
  plan->faults.push_back(
      mr::FaultSpec{.phase = mr::TaskPhase::kReduce,
                    .task_id = 0,
                    .failing_attempts = mr::FaultSpec::kAllAttempts,
                    .crash_after_records = 0,
                    .job_substring = "stage2"});
  auto config = BaseConfig(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                           Stage3Algorithm::kBRJ, 0);
  config.fault_plan = plan;
  EXPECT_FALSE(plan->RecoverableWith(config.max_task_attempts));

  auto result = RunSelfJoin(&dfs, "records", "doomed", config);
  ASSERT_FALSE(result.ok());
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find("stage2"), std::string::npos) << message;
  EXPECT_NE(message.find("failed permanently"), std::string::npos) << message;
  // The failed stage wrote nothing: no RID pairs, no join output.
  EXPECT_FALSE(dfs.ReadFile("doomed").ok());
}

}  // namespace
}  // namespace fj::join
