// Pipeline-level fault-recovery golden tests: the full three-stage join —
// self and R-S, every algorithm name, with and without spilling — must
// produce byte-identical output under any recoverable fault plan
// (crashes retried, stragglers speculated) as in the fault-free run. A
// permanent fault scoped to one stage's job must fail the whole pipeline
// with a clean Status and write no join output.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"

namespace fj::join {
namespace {

std::vector<std::string> SelfInputLines() {
  auto config = data::DblpLikeConfig(250, 11);
  config.payload_bytes = 24;
  return data::RecordsToLines(data::GenerateRecords(config));
}

std::vector<std::string> OuterInputLines() {
  auto config = data::CiteseerxLikeConfig(180, 29);
  config.payload_bytes = 24;
  return data::RecordsToLines(data::GenerateRecords(config));
}

JoinConfig BaseConfig(Stage1Algorithm s1, Stage2Algorithm s2,
                      Stage3Algorithm s3, uint64_t sort_buffer,
                      mr::RecordFormat format = mr::RecordFormat::kText,
                      mr::BlockCodec codec = mr::BlockCodec::kNone) {
  JoinConfig config;
  config.stage1 = s1;
  config.stage2 = s2;
  config.stage3 = s3;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 3;
  config.sort_buffer_bytes = sort_buffer;
  config.record_format = format;
  config.block_codec = codec;
  return config;
}

// A plan that exercises every recovery path: most attempts crash early,
// half the tasks straggle hard enough to draw speculative backups.
std::shared_ptr<const mr::FaultPlan> ChaosPlan() {
  auto plan = std::make_shared<mr::FaultPlan>();
  plan->seed = 13;
  plan->crash_probability = 0.6;
  plan->crash_after_records = 4;
  plan->crash_failing_attempts = 2;
  plan->straggler_probability = 0.4;
  plan->straggler_extra_seconds = 25.0;
  return plan;
}

const std::vector<std::string>& Lines(const mr::Dfs& dfs,
                                      const std::string& file) {
  auto lines = dfs.ReadFile(file);
  EXPECT_TRUE(lines.ok());
  return *lines.value();
}

uint64_t TotalFailedAttempts(const JoinRunResult& result) {
  uint64_t failed = 0;
  for (const auto& stage : result.stages) {
    for (const auto& job : stage.jobs) failed += job.failed_attempts;
  }
  return failed;
}

uint64_t TotalCorruptionDetected(const JoinRunResult& result) {
  uint64_t detected = 0;
  for (const auto& stage : result.stages) {
    for (const auto& job : stage.jobs) detected += job.corruption_detected;
  }
  return detected;
}

// A transient CorruptRecord plan aimed at one target kind in every job of
// the pipeline: map-phase targets hit map task 1, reduce output hits
// reduce task 0.
std::shared_ptr<const mr::FaultPlan> CorruptionPlan(mr::CorruptTarget target) {
  auto plan = std::make_shared<mr::FaultPlan>();
  mr::TaskPhase phase = target == mr::CorruptTarget::kReduceOutput
                            ? mr::TaskPhase::kReduce
                            : mr::TaskPhase::kMap;
  plan->faults.push_back(
      mr::FaultSpec{.phase = phase,
                    .task_id = phase == mr::TaskPhase::kMap ? 1u : 0u,
                    .first_attempt = 0,
                    .failing_attempts = 2,
                    .corrupt_target = target,
                    .corrupt_salt = 41});
  return plan;
}

void RunSelfGoldenCase(Stage1Algorithm s1, Stage2Algorithm s2,
                       Stage3Algorithm s3, uint64_t sort_buffer,
                       mr::RecordFormat format = mr::RecordFormat::kText,
                       mr::BlockCodec codec = mr::BlockCodec::kNone) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());

  auto clean_config = BaseConfig(s1, s2, s3, sort_buffer, format, codec);
  auto clean = RunSelfJoin(&dfs, "records", "clean", clean_config);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  auto faulted_config = BaseConfig(s1, s2, s3, sort_buffer, format, codec);
  faulted_config.fault_plan = ChaosPlan();
  faulted_config.speculative_execution = true;
  ASSERT_TRUE(
      faulted_config.fault_plan->RecoverableWith(faulted_config.max_task_attempts));
  auto faulted = RunSelfJoin(&dfs, "records", "faulted", faulted_config);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();

  // The plan actually hurt: tasks crashed and were retried...
  EXPECT_GT(TotalFailedAttempts(*faulted), 0u);
  // ...and the join plus every kept intermediate is still byte-identical.
  EXPECT_EQ(Lines(dfs, clean->output_file), Lines(dfs, faulted->output_file));
  EXPECT_EQ(Lines(dfs, clean->ordering_file),
            Lines(dfs, faulted->ordering_file));
  EXPECT_EQ(Lines(dfs, clean->rid_pairs_file),
            Lines(dfs, faulted->rid_pairs_file));
}

void RunRSGoldenCase(Stage1Algorithm s1, Stage2Algorithm s2,
                     Stage3Algorithm s3, uint64_t sort_buffer,
                     mr::RecordFormat format = mr::RecordFormat::kText,
                     mr::BlockCodec codec = mr::BlockCodec::kNone) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("r", SelfInputLines()).ok());
  ASSERT_TRUE(dfs.WriteFile("s", OuterInputLines()).ok());

  auto clean_config = BaseConfig(s1, s2, s3, sort_buffer, format, codec);
  auto clean = RunRSJoin(&dfs, "r", "s", "clean", clean_config);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  auto faulted_config = BaseConfig(s1, s2, s3, sort_buffer, format, codec);
  faulted_config.fault_plan = ChaosPlan();
  faulted_config.speculative_execution = true;
  auto faulted = RunRSJoin(&dfs, "r", "s", "faulted", faulted_config);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();

  EXPECT_GT(TotalFailedAttempts(*faulted), 0u);
  EXPECT_EQ(Lines(dfs, clean->output_file), Lines(dfs, faulted->output_file));
  EXPECT_EQ(Lines(dfs, clean->rid_pairs_file),
            Lines(dfs, faulted->rid_pairs_file));
}

// Four combos cover all six algorithm names; spilling alternates so both
// shuffle paths run under faults.
TEST(FaultPipelineTest, SelfBtoBkBrjUnbounded) {
  RunSelfGoldenCase(Stage1Algorithm::kBTO, Stage2Algorithm::kBK,
                    Stage3Algorithm::kBRJ, 0);
}

TEST(FaultPipelineTest, SelfBtoPkOprjSpilling) {
  RunSelfGoldenCase(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                    Stage3Algorithm::kOPRJ, 256);
}

TEST(FaultPipelineTest, SelfOptoPkBrjSpilling) {
  RunSelfGoldenCase(Stage1Algorithm::kOPTO, Stage2Algorithm::kPK,
                    Stage3Algorithm::kBRJ, 256);
}

TEST(FaultPipelineTest, SelfOptoBkOprjUnbounded) {
  RunSelfGoldenCase(Stage1Algorithm::kOPTO, Stage2Algorithm::kBK,
                    Stage3Algorithm::kOPRJ, 0);
}

TEST(FaultPipelineTest, RSBtoPkBrjUnbounded) {
  RunRSGoldenCase(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                  Stage3Algorithm::kBRJ, 0);
}

TEST(FaultPipelineTest, RSOptoBkOprjSpilling) {
  RunRSGoldenCase(Stage1Algorithm::kOPTO, Stage2Algorithm::kBK,
                  Stage3Algorithm::kOPRJ, 256);
}

// Binary format axis: the same chaos plan against compressed binary spill
// runs and binary wire-record intermediates.
TEST(FaultPipelineTest, SelfBinaryFjlzChaosSpilling) {
  RunSelfGoldenCase(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                    Stage3Algorithm::kBRJ, 256, mr::RecordFormat::kBinary,
                    mr::BlockCodec::kFjlz);
}

TEST(FaultPipelineTest, RSBinaryChaosUnbounded) {
  RunRSGoldenCase(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                  Stage3Algorithm::kBRJ, 0, mr::RecordFormat::kBinary);
}

// --- CorruptRecord matrix: self/R-S x spill on/off x corruption target.
// With verify_integrity on, every detected corruption becomes a transient
// retry and the join stays byte-identical to the clean run.

void RunSelfCorruptionCase(mr::CorruptTarget target, uint64_t sort_buffer,
                           mr::RecordFormat format = mr::RecordFormat::kText,
                           mr::BlockCodec codec = mr::BlockCodec::kNone) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());

  auto clean_config = BaseConfig(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                                 Stage3Algorithm::kBRJ, sort_buffer, format,
                                 codec);
  auto clean = RunSelfJoin(&dfs, "records", "clean", clean_config);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  auto config = BaseConfig(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                           Stage3Algorithm::kBRJ, sort_buffer, format, codec);
  config.verify_integrity = true;
  auto plan = CorruptionPlan(target);
  // Corruption is only recoverable when something detects it.
  EXPECT_FALSE(plan->RecoverableWith(config.max_task_attempts, false));
  ASSERT_TRUE(plan->RecoverableWith(config.max_task_attempts, true));
  config.fault_plan = plan;

  auto corrupted = RunSelfJoin(&dfs, "records", "corrupted", config);
  ASSERT_TRUE(corrupted.ok()) << corrupted.status().ToString();
  EXPECT_GT(TotalCorruptionDetected(*corrupted), 0u);
  EXPECT_GT(TotalFailedAttempts(*corrupted), 0u);
  EXPECT_EQ(Lines(dfs, clean->output_file),
            Lines(dfs, corrupted->output_file));
  EXPECT_EQ(Lines(dfs, clean->rid_pairs_file),
            Lines(dfs, corrupted->rid_pairs_file));
}

void RunRSCorruptionCase(mr::CorruptTarget target, uint64_t sort_buffer,
                         mr::RecordFormat format = mr::RecordFormat::kText,
                         mr::BlockCodec codec = mr::BlockCodec::kNone) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("r", SelfInputLines()).ok());
  ASSERT_TRUE(dfs.WriteFile("s", OuterInputLines()).ok());

  auto clean_config = BaseConfig(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                                 Stage3Algorithm::kBRJ, sort_buffer, format,
                                 codec);
  auto clean = RunRSJoin(&dfs, "r", "s", "clean", clean_config);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  auto config = BaseConfig(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                           Stage3Algorithm::kBRJ, sort_buffer, format, codec);
  config.verify_integrity = true;
  config.fault_plan = CorruptionPlan(target);

  auto corrupted = RunRSJoin(&dfs, "r", "s", "corrupted", config);
  ASSERT_TRUE(corrupted.ok()) << corrupted.status().ToString();
  EXPECT_GT(TotalCorruptionDetected(*corrupted), 0u);
  EXPECT_EQ(Lines(dfs, clean->output_file),
            Lines(dfs, corrupted->output_file));
}

TEST(FaultPipelineTest, SelfCorruptMapOutputUnbounded) {
  RunSelfCorruptionCase(mr::CorruptTarget::kMapOutput, 0);
}

TEST(FaultPipelineTest, SelfCorruptMapOutputSpilling) {
  RunSelfCorruptionCase(mr::CorruptTarget::kMapOutput, 256);
}

TEST(FaultPipelineTest, SelfCorruptSpillSpilling) {
  RunSelfCorruptionCase(mr::CorruptTarget::kSpill, 256);
}

TEST(FaultPipelineTest, SelfCorruptReduceOutputUnbounded) {
  RunSelfCorruptionCase(mr::CorruptTarget::kReduceOutput, 0);
}

TEST(FaultPipelineTest, RSCorruptSpillSpilling) {
  RunRSCorruptionCase(mr::CorruptTarget::kSpill, 256);
}

// Binary axis: the injector flips a byte inside the *encoded* (and with
// fjlz, compressed) spill block — the checksum is defined over exactly
// those bytes, so detection must still fire and the join still match.
TEST(FaultPipelineTest, SelfBinaryCorruptEncodedSpillSpilling) {
  RunSelfCorruptionCase(mr::CorruptTarget::kSpill, 256,
                        mr::RecordFormat::kBinary, mr::BlockCodec::kFjlz);
}

TEST(FaultPipelineTest, SelfBinaryCorruptMapOutputUnbounded) {
  RunSelfCorruptionCase(mr::CorruptTarget::kMapOutput, 0,
                        mr::RecordFormat::kBinary);
}

TEST(FaultPipelineTest, RSBinaryCorruptReduceOutputSpilling) {
  RunRSCorruptionCase(mr::CorruptTarget::kReduceOutput, 256,
                      mr::RecordFormat::kBinary, mr::BlockCodec::kFjlz);
}

TEST(FaultPipelineTest, RSCorruptReduceOutputUnbounded) {
  RunRSCorruptionCase(mr::CorruptTarget::kReduceOutput, 0);
}

TEST(FaultPipelineTest, CorruptionWithoutVerificationIsSilentlyWrong) {
  // The negative control: same corruption, verification off. The pipeline
  // "succeeds" — and the RID pairs are wrong. This is the failure mode
  // verify_integrity exists to prevent, demonstrated on purpose.
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());

  auto clean_config = BaseConfig(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                                 Stage3Algorithm::kBRJ, 0);
  auto clean = RunSelfJoin(&dfs, "records", "clean", clean_config);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  auto config = BaseConfig(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                           Stage3Algorithm::kBRJ, 0);
  // Flip a byte of one emitted RID-pair line in the kernel's reduce
  // output: the pairs file provably changes.
  auto plan = std::make_shared<mr::FaultPlan>();
  plan->faults.push_back(
      mr::FaultSpec{.phase = mr::TaskPhase::kReduce,
                    .task_id = 0,
                    .first_attempt = 0,
                    .failing_attempts = 2,
                    .corrupt_target = mr::CorruptTarget::kReduceOutput,
                    .corrupt_salt = 41,
                    .job_substring = "stage2"});
  config.fault_plan = plan;

  auto corrupted = RunSelfJoin(&dfs, "records", "silent", config);
  ASSERT_TRUE(corrupted.ok()) << corrupted.status().ToString();
  EXPECT_EQ(TotalCorruptionDetected(*corrupted), 0u);
  EXPECT_NE(Lines(dfs, clean->rid_pairs_file),
            Lines(dfs, corrupted->rid_pairs_file));
}

TEST(FaultPipelineTest, PermanentCorruptionFailsPipelineWithStatus) {
  // Corruption on every attempt of one kernel task with verification on:
  // the integrity layer turns each attempt into a failure until the budget
  // is exhausted — a structured error, never silent wrong output.
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());

  auto plan = std::make_shared<mr::FaultPlan>();
  plan->faults.push_back(
      mr::FaultSpec{.phase = mr::TaskPhase::kMap,
                    .task_id = 1,
                    .first_attempt = 0,
                    .failing_attempts = mr::FaultSpec::kAllAttempts,
                    .corrupt_target = mr::CorruptTarget::kMapOutput,
                    .corrupt_salt = 41,
                    .job_substring = "stage2"});
  auto config = BaseConfig(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                           Stage3Algorithm::kBRJ, 0);
  config.verify_integrity = true;
  config.fault_plan = plan;
  EXPECT_FALSE(plan->RecoverableWith(config.max_task_attempts, true));

  auto result = RunSelfJoin(&dfs, "records", "doomed", config);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("failed permanently"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_FALSE(dfs.Exists("doomed.joined"));
}

TEST(FaultPipelineTest, MalformedInputLinesQuarantinedAcrossThePipeline) {
  // Inject garbage lines into the input: every stage that parses records
  // quarantines them to its own "<output>.bad" file and the join over the
  // good records still succeeds.
  std::vector<std::string> lines = SelfInputLines();
  lines.insert(lines.begin() + 3, "not a record at all");
  lines.push_back("also\tnot\tenough");
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", std::move(lines)).ok());

  auto config = BaseConfig(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                           Stage3Algorithm::kBRJ, 0);
  auto result = RunSelfJoin(&dfs, "records", "out", config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  uint64_t skipped = 0;
  for (const auto& stage : result->stages) {
    for (const auto& job : stage.jobs) skipped += job.records_skipped;
  }
  EXPECT_GT(skipped, 0u);
  bool bad_file_found = false;
  for (const std::string& name : dfs.ListFiles()) {
    if (name.size() > 4 && name.substr(name.size() - 4) == ".bad") {
      bad_file_found = true;
      for (const std::string& line : Lines(dfs, name)) {
        EXPECT_TRUE(line == "not a record at all" ||
                    line == "also\tnot\tenough")
            << name << ": " << line;
      }
    }
  }
  EXPECT_TRUE(bad_file_found);

  // The cap turns the same input into a structured failure.
  auto strict = BaseConfig(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                           Stage3Algorithm::kBRJ, 0);
  strict.max_skipped_records = 1;
  auto refused = RunSelfJoin(&dfs, "records", "strict", strict);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kDataLoss);
}

TEST(FaultPipelineTest, PermanentStageFaultFailsPipelineCleanly) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());

  auto plan = std::make_shared<mr::FaultPlan>();
  // Only the kernel job's reduce task 0 is cursed — stage 1 completes,
  // stage 2 exhausts its attempts, stage 3 never runs.
  plan->faults.push_back(
      mr::FaultSpec{.phase = mr::TaskPhase::kReduce,
                    .task_id = 0,
                    .failing_attempts = mr::FaultSpec::kAllAttempts,
                    .crash_after_records = 0,
                    .job_substring = "stage2"});
  auto config = BaseConfig(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                           Stage3Algorithm::kBRJ, 0);
  config.fault_plan = plan;
  EXPECT_FALSE(plan->RecoverableWith(config.max_task_attempts));

  auto result = RunSelfJoin(&dfs, "records", "doomed", config);
  ASSERT_FALSE(result.ok());
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find("stage2"), std::string::npos) << message;
  EXPECT_NE(message.find("failed permanently"), std::string::npos) << message;
  // The failed stage wrote nothing: no RID pairs, no join output.
  EXPECT_FALSE(dfs.ReadFile("doomed").ok());
}

}  // namespace
}  // namespace fj::join
