// End-to-end R-S join validation (Section 4): every algorithm combination
// must match the naive ground truth — including the subtlety that S may
// contain tokens R never produced (the stage-1 ordering is built from R
// alone) and that R/S RID spaces may overlap.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"
#include "ppjoin/naive.h"
#include "text/token_ordering.h"
#include "text/tokenizer.h"

namespace fj::join {
namespace {

using data::GenerateRecords;
using data::Record;
using ppjoin::NaiveRSJoin;
using ppjoin::SimilarPair;
using ppjoin::TokenSetRecord;

struct RSData {
  std::vector<Record> r;
  std::vector<Record> s;
};

RSData TestData(size_t nr, size_t ns, uint64_t seed) {
  auto r_config = data::DblpLikeConfig(nr, seed);
  r_config.payload_bytes = 24;
  auto s_config = data::CiteseerxLikeConfig(ns, seed + 1);
  s_config.payload_bytes = 48;
  // Overlapping RID spaces on purpose: both start at RID 1.
  RSData out;
  out.r = GenerateRecords(r_config);
  out.s = GenerateRecords(s_config);
  data::InjectOverlap(out.r, 0.25, 2, seed + 2, &out.s);
  return out;
}

/// Ground truth built the way the pipeline builds it: ordering from R only,
/// S's unknown tokens keep hash-derived ids.
std::vector<SimilarPair> GroundTruth(const RSData& datasets,
                                     const sim::SimilaritySpec& spec) {
  text::WordTokenizer tokenizer;
  std::map<std::string, uint64_t> counts;
  for (const auto& r : datasets.r) {
    for (const auto& t : tokenizer.Tokenize(r.JoinAttribute())) counts[t]++;
  }
  auto ordering =
      text::TokenOrdering::FromCounts({counts.begin(), counts.end()});

  auto to_sets = [&](const std::vector<Record>& records) {
    std::vector<TokenSetRecord> sets;
    sets.reserve(records.size());
    for (const auto& rec : records) {
      sets.push_back(TokenSetRecord{
          rec.rid,
          ordering.ToSortedIds(tokenizer.Tokenize(rec.JoinAttribute()))});
    }
    return sets;
  };
  return NaiveRSJoin(to_sets(datasets.r), to_sets(datasets.s), spec);
}

struct ComboParam {
  Stage2Algorithm stage2;
  Stage3Algorithm stage3;
  TokenRouting routing;
};

std::string ComboName(const testing::TestParamInfo<ComboParam>& info) {
  const ComboParam& p = info.param;
  return std::string(Stage2Name(p.stage2)) + "_" + Stage3Name(p.stage3) +
         (p.routing == TokenRouting::kIndividualTokens ? "_individual"
                                                       : "_grouped");
}

class RSJoinComboTest : public testing::TestWithParam<ComboParam> {};

TEST_P(RSJoinComboTest, MatchesNaiveGroundTruth) {
  const ComboParam& p = GetParam();
  RSData datasets = TestData(250, 180, 21);

  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("r", data::RecordsToLines(datasets.r)).ok());
  ASSERT_TRUE(dfs.WriteFile("s", data::RecordsToLines(datasets.s)).ok());

  JoinConfig config;
  config.stage2 = p.stage2;
  config.stage3 = p.stage3;
  config.routing = p.routing;
  config.num_groups = 9;
  config.num_map_tasks = 5;
  config.num_reduce_tasks = 3;

  auto result = RunRSJoin(&dfs, "r", "s", "out", config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto joined = ReadJoinedPairs(dfs, result->output_file);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();

  auto expected = GroundTruth(datasets, config.MakeSpec());

  std::map<uint64_t, Record> r_by_rid, s_by_rid;
  for (const auto& r : datasets.r) r_by_rid[r.rid] = r;
  for (const auto& s : datasets.s) s_by_rid[s.rid] = s;

  std::set<std::pair<uint64_t, uint64_t>> got, want;
  for (const auto& jp : *joined) {
    auto inserted = got.emplace(jp.first.rid, jp.second.rid);
    EXPECT_TRUE(inserted.second)
        << "duplicate pair " << jp.first.rid << "," << jp.second.rid;
    // First record must be the R record, second the S record.
    EXPECT_EQ(jp.first, r_by_rid[jp.first.rid]);
    EXPECT_EQ(jp.second, s_by_rid[jp.second.rid]);
  }
  std::map<std::pair<uint64_t, uint64_t>, double> want_sim;
  for (const auto& pair : expected) {
    want.emplace(pair.rid1, pair.rid2);
    want_sim[{pair.rid1, pair.rid2}] = pair.similarity;
  }
  EXPECT_EQ(got, want);
  for (const auto& jp : *joined) {
    auto it = want_sim.find({jp.first.rid, jp.second.rid});
    if (it != want_sim.end()) {
      EXPECT_NEAR(jp.similarity, it->second, 1e-5);
    }
  }
  EXPECT_FALSE(expected.empty()) << "vacuous test: no ground-truth pairs";
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, RSJoinComboTest,
    testing::Values(
        ComboParam{Stage2Algorithm::kBK, Stage3Algorithm::kBRJ,
                   TokenRouting::kIndividualTokens},
        ComboParam{Stage2Algorithm::kPK, Stage3Algorithm::kBRJ,
                   TokenRouting::kIndividualTokens},
        ComboParam{Stage2Algorithm::kBK, Stage3Algorithm::kOPRJ,
                   TokenRouting::kIndividualTokens},
        ComboParam{Stage2Algorithm::kPK, Stage3Algorithm::kOPRJ,
                   TokenRouting::kIndividualTokens},
        ComboParam{Stage2Algorithm::kBK, Stage3Algorithm::kBRJ,
                   TokenRouting::kGroupedTokens},
        ComboParam{Stage2Algorithm::kPK, Stage3Algorithm::kOPRJ,
                   TokenRouting::kGroupedTokens}),
    ComboName);

TEST(RSJoinTest, DisjointTokenSpacesProduceEmptyResult) {
  // S records whose tokens never appear in R: no pair can qualify, and the
  // pipeline must cope with prefixes made of unknown tokens.
  std::vector<Record> r, s;
  for (uint64_t i = 1; i <= 20; ++i) {
    r.push_back(Record{i, "alpha beta gamma delta " + std::to_string(i),
                       "mcfoo", "p"});
    s.push_back(Record{i, "zulu yankee xray whiskey " + std::to_string(i + 100),
                       "mcbar", "p"});
  }
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("r", data::RecordsToLines(r)).ok());
  ASSERT_TRUE(dfs.WriteFile("s", data::RecordsToLines(s)).ok());
  JoinConfig config;
  auto result = RunRSJoin(&dfs, "r", "s", "out", config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto joined = ReadJoinedPairs(dfs, result->output_file);
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined->empty());
}

TEST(RSJoinTest, IdenticalRelationsFindAllIdentityPairs) {
  auto config_r = data::DblpLikeConfig(80, 5);
  config_r.payload_bytes = 16;
  config_r.duplicate_fraction = 0;  // distinct records
  std::vector<Record> r = GenerateRecords(config_r);
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("r", data::RecordsToLines(r)).ok());
  ASSERT_TRUE(dfs.WriteFile("s", data::RecordsToLines(r)).ok());
  JoinConfig config;
  auto result = RunRSJoin(&dfs, "r", "s", "out", config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto joined = ReadJoinedPairs(dfs, result->output_file);
  ASSERT_TRUE(joined.ok());
  // Every record joins (at least) with its own copy at similarity 1.
  std::set<std::pair<uint64_t, uint64_t>> got;
  for (const auto& jp : *joined) got.emplace(jp.first.rid, jp.second.rid);
  for (const auto& rec : r) {
    EXPECT_TRUE(got.count({rec.rid, rec.rid}))
        << "identity pair missing for rid " << rec.rid;
  }
}

}  // namespace
}  // namespace fj::join
