// Reproducibility guarantees: byte-identical outputs across repeated runs
// and across physical thread counts, and result-equivalence across group
// assignment policies.
#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"

namespace fj::join {
namespace {

std::vector<data::Record> TestRecords() {
  auto config = data::DblpLikeConfig(300, 101);
  config.payload_bytes = 16;
  return data::GenerateRecords(config);
}

const std::vector<std::string>* RunAndReadOutput(mr::Dfs* dfs,
                                                 const std::string& prefix,
                                                 const JoinConfig& config) {
  auto result = RunSelfJoin(dfs, "records", prefix, config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return nullptr;
  auto lines = dfs->ReadFile(result->output_file);
  EXPECT_TRUE(lines.ok());
  return lines.ok() ? lines.value() : nullptr;
}

TEST(DeterminismTest, RepeatedRunsAreByteIdentical) {
  mr::Dfs dfs;
  ASSERT_TRUE(
      dfs.WriteFile("records", data::RecordsToLines(TestRecords())).ok());
  JoinConfig config;
  auto* first = RunAndReadOutput(&dfs, "a", config);
  auto* second = RunAndReadOutput(&dfs, "b", config);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(*first, *second);
  EXPECT_FALSE(first->empty());
}

TEST(DeterminismTest, ThreadCountDoesNotChangeOutput) {
  mr::Dfs dfs;
  ASSERT_TRUE(
      dfs.WriteFile("records", data::RecordsToLines(TestRecords())).ok());
  JoinConfig single;
  single.local_threads = 1;
  JoinConfig multi = single;
  multi.local_threads = 4;
  auto* a = RunAndReadOutput(&dfs, "t1", single);
  auto* b = RunAndReadOutput(&dfs, "t4", multi);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(*a, *b);
}

TEST(DeterminismTest, GroupAssignmentPoliciesAgreeOnResults) {
  mr::Dfs dfs;
  ASSERT_TRUE(
      dfs.WriteFile("records", data::RecordsToLines(TestRecords())).ok());
  std::set<std::pair<uint64_t, uint64_t>> results[2];
  int idx = 0;
  for (auto assignment :
       {GroupAssignment::kRoundRobin, GroupAssignment::kContiguous}) {
    JoinConfig config;
    config.routing = TokenRouting::kGroupedTokens;
    config.num_groups = 17;
    config.group_assignment = assignment;
    auto* lines = RunAndReadOutput(
        &dfs, assignment == GroupAssignment::kRoundRobin ? "rr" : "cg",
        config);
    ASSERT_NE(lines, nullptr);
    for (const auto& line : *lines) {
      auto pair = JoinedPair::FromLine(line);
      ASSERT_TRUE(pair.ok());
      results[idx].emplace(pair->first.rid, pair->second.rid);
    }
    ++idx;
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_FALSE(results[0].empty());
}

TEST(DeterminismTest, TaskCountsDoNotChangeResults) {
  mr::Dfs dfs;
  ASSERT_TRUE(
      dfs.WriteFile("records", data::RecordsToLines(TestRecords())).ok());
  std::set<std::pair<uint64_t, uint64_t>> baseline;
  bool first = true;
  int run = 0;
  for (size_t map_tasks : {1u, 7u, 40u}) {
    for (size_t reduce_tasks : {1u, 5u, 16u}) {
      JoinConfig config;
      config.num_map_tasks = map_tasks;
      config.num_reduce_tasks = reduce_tasks;
      auto* lines =
          RunAndReadOutput(&dfs, "mt" + std::to_string(run++), config);
      ASSERT_NE(lines, nullptr);
      std::set<std::pair<uint64_t, uint64_t>> pairs;
      for (const auto& line : *lines) {
        auto pair = JoinedPair::FromLine(line);
        ASSERT_TRUE(pair.ok());
        pairs.emplace(pair->first.rid, pair->second.rid);
      }
      if (first) {
        baseline = pairs;
        first = false;
        ASSERT_FALSE(baseline.empty());
      } else {
        EXPECT_EQ(pairs, baseline)
            << map_tasks << " map / " << reduce_tasks << " reduce tasks";
      }
    }
  }
}

}  // namespace
}  // namespace fj::join
