// Pipeline-level golden test for the sort-spill-merge shuffle: the full
// three-stage self-join must produce byte-identical output whether every
// job runs with an unbounded sort buffer (legacy) or a budget small enough
// to force spilling in every stage — and the cluster model must charge the
// spill traffic it caused.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"

namespace fj::join {
namespace {

std::vector<std::string> InputLines() {
  auto config = data::DblpLikeConfig(250, 11);
  config.payload_bytes = 24;
  return data::RecordsToLines(data::GenerateRecords(config));
}

JoinConfig BaseConfig(Stage1Algorithm s1, Stage2Algorithm s2,
                      Stage3Algorithm s3) {
  JoinConfig config;
  config.stage1 = s1;
  config.stage2 = s2;
  config.stage3 = s3;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 3;
  return config;
}

const std::vector<std::string>& Lines(const mr::Dfs& dfs,
                                      const std::string& file) {
  auto lines = dfs.ReadFile(file);
  EXPECT_TRUE(lines.ok());
  return *lines.value();
}

struct PipelineTotals {
  uint64_t spill_count = 0;
  uint64_t spilled_bytes = 0;
  double spill_seconds = 0;
};

PipelineTotals Totals(const JoinRunResult& result,
                      const mr::ClusterConfig& cluster) {
  PipelineTotals t;
  for (const auto& stage : result.stages) {
    for (const auto& job : stage.jobs) {
      t.spill_count += job.spill_count;
      t.spilled_bytes += job.spilled_bytes;
      t.spill_seconds += mr::SimulateJob(job, cluster).spill_seconds;
    }
  }
  return t;
}

void RunGoldenCase(Stage1Algorithm s1, Stage2Algorithm s2,
                   Stage3Algorithm s3) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", InputLines()).ok());
  mr::ClusterConfig cluster;

  auto legacy_config = BaseConfig(s1, s2, s3);
  auto legacy = RunSelfJoin(&dfs, "records", "legacy", legacy_config);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  auto legacy_totals = Totals(*legacy, cluster);
  EXPECT_EQ(legacy_totals.spill_count, 0u);
  EXPECT_DOUBLE_EQ(legacy_totals.spill_seconds, 0.0);

  auto spill_config = BaseConfig(s1, s2, s3);
  spill_config.sort_buffer_bytes = 256;  // far below any stage's volume
  auto spilled = RunSelfJoin(&dfs, "records", "spilled", spill_config);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  auto spilled_totals = Totals(*spilled, cluster);
  EXPECT_GT(spilled_totals.spill_count, 0u);
  EXPECT_GT(spilled_totals.spilled_bytes, 0u);
  EXPECT_GT(spilled_totals.spill_seconds, 0.0);

  // The join itself and every kept intermediate are byte-identical.
  EXPECT_EQ(Lines(dfs, legacy->output_file), Lines(dfs, spilled->output_file));
  EXPECT_EQ(Lines(dfs, legacy->ordering_file),
            Lines(dfs, spilled->ordering_file));
  EXPECT_EQ(Lines(dfs, legacy->rid_pairs_file),
            Lines(dfs, spilled->rid_pairs_file));
}

TEST(SpillPipelineTest, BtoPkBrjGolden) {
  RunGoldenCase(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                Stage3Algorithm::kBRJ);
}

TEST(SpillPipelineTest, OptoBkOprjGolden) {
  RunGoldenCase(Stage1Algorithm::kOPTO, Stage2Algorithm::kBK,
                Stage3Algorithm::kOPRJ);
}

TEST(SpillPipelineTest, BtoPkOprjGolden) {
  RunGoldenCase(Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                Stage3Algorithm::kOPRJ);
}

}  // namespace
}  // namespace fj::join
