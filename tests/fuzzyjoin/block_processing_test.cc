// Section 5 (insufficient memory) tests: the map-based and reduce-based
// block-processing strategies must produce exactly the same join result as
// the in-memory BK kernel, while bounding the number of projections
// resident in reducer memory and (for the reduce-based strategy) paying
// metered local-disk I/O.
#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"

namespace fj::join {
namespace {

using data::GenerateRecords;
using data::Record;

std::vector<Record> TestRecords(size_t n, uint64_t seed) {
  auto config = data::DblpLikeConfig(n, seed);
  config.payload_bytes = 16;
  return GenerateRecords(config);
}

std::set<std::pair<uint64_t, uint64_t>> RunAndCollect(
    const std::vector<Record>& records, const JoinConfig& config,
    fj::CounterSet* counters_out = nullptr,
    std::vector<mr::JobMetrics>* stage2_jobs = nullptr) {
  mr::Dfs dfs;
  EXPECT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());
  auto result = RunSelfJoin(&dfs, "records", "out", config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::set<std::pair<uint64_t, uint64_t>> pairs;
  if (!result.ok()) return pairs;
  auto joined = ReadJoinedPairs(dfs, result->output_file);
  EXPECT_TRUE(joined.ok());
  if (joined.ok()) {
    for (const auto& jp : *joined) pairs.emplace(jp.first.rid, jp.second.rid);
  }
  if (counters_out != nullptr || stage2_jobs != nullptr) {
    for (const auto& stage : result->stages) {
      if (stage.stage_name.rfind("2-", 0) != 0) continue;
      for (const auto& job : stage.jobs) {
        if (counters_out != nullptr) counters_out->MergeFrom(job.counters);
        if (stage2_jobs != nullptr) stage2_jobs->push_back(job);
      }
    }
  }
  return pairs;
}

class BlockProcessingTest : public testing::TestWithParam<TokenRouting> {};

TEST_P(BlockProcessingTest, SelfJoinStrategiesAgreeWithInMemoryBK) {
  std::vector<Record> records = TestRecords(250, 17);

  JoinConfig base;
  base.stage2 = Stage2Algorithm::kBK;
  base.routing = GetParam();
  base.num_groups = 7;

  auto in_memory = RunAndCollect(records, base);
  ASSERT_FALSE(in_memory.empty());

  for (auto strategy :
       {BlockProcessing::kMapBased, BlockProcessing::kReduceBased}) {
    for (uint32_t blocks : {1u, 2u, 5u}) {
      JoinConfig config = base;
      config.block_processing = strategy;
      config.num_blocks = blocks;
      auto blocked = RunAndCollect(records, config);
      EXPECT_EQ(blocked, in_memory)
          << "strategy=" << static_cast<int>(strategy) << " blocks=" << blocks;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Routing, BlockProcessingTest,
                         testing::Values(TokenRouting::kIndividualTokens,
                                         TokenRouting::kGroupedTokens),
                         [](const testing::TestParamInfo<TokenRouting>& info) {
                           return info.param ==
                                          TokenRouting::kIndividualTokens
                                      ? "individual"
                                      : "grouped";
                         });

TEST(BlockProcessingTest, RSJoinStrategiesAgreeWithInMemoryBK) {
  auto r_config = data::DblpLikeConfig(150, 31);
  r_config.payload_bytes = 16;
  auto s_config = data::DblpLikeConfig(120, 32);
  s_config.payload_bytes = 16;
  std::vector<Record> r = GenerateRecords(r_config);
  std::vector<Record> s = GenerateRecords(s_config);
  data::InjectOverlap(r, 0.3, 2, 33, &s);

  auto run = [&](BlockProcessing strategy, uint32_t blocks) {
    mr::Dfs dfs;
    EXPECT_TRUE(dfs.WriteFile("r", data::RecordsToLines(r)).ok());
    EXPECT_TRUE(dfs.WriteFile("s", data::RecordsToLines(s)).ok());
    JoinConfig config;
    config.stage2 = Stage2Algorithm::kBK;
    config.block_processing = strategy;
    config.num_blocks = blocks;
    auto result = RunRSJoin(&dfs, "r", "s", "out", config);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::set<std::pair<uint64_t, uint64_t>> pairs;
    if (!result.ok()) return pairs;
    auto joined = ReadJoinedPairs(dfs, result->output_file);
    EXPECT_TRUE(joined.ok());
    for (const auto& jp : *joined) pairs.emplace(jp.first.rid, jp.second.rid);
    return pairs;
  };

  auto in_memory = run(BlockProcessing::kNone, 0);
  ASSERT_FALSE(in_memory.empty());
  EXPECT_EQ(run(BlockProcessing::kMapBased, 3), in_memory);
  EXPECT_EQ(run(BlockProcessing::kReduceBased, 3), in_memory);
  EXPECT_EQ(run(BlockProcessing::kMapBased, 1), in_memory);
  EXPECT_EQ(run(BlockProcessing::kReduceBased, 1), in_memory);
}

TEST(BlockProcessingTest, BlocksBoundReducerMemory) {
  std::vector<Record> records = TestRecords(400, 19);

  JoinConfig whole;
  whole.stage2 = Stage2Algorithm::kBK;
  fj::CounterSet whole_counters;
  RunAndCollect(records, whole, &whole_counters);
  int64_t whole_peak = whole_counters.Get("stage2.peak_group_records");
  ASSERT_GT(whole_peak, 0);

  JoinConfig blocked = whole;
  blocked.block_processing = BlockProcessing::kMapBased;
  blocked.num_blocks = 8;
  fj::CounterSet blocked_counters;
  RunAndCollect(records, blocked, &blocked_counters);
  int64_t blocked_peak =
      blocked_counters.Get("stage2.block.peak_memory_records");
  ASSERT_GT(blocked_peak, 0);

  // Sub-partitioning into 8 hash blocks should shrink the peak resident
  // set substantially (not exactly 8x: hash imbalance).
  EXPECT_LT(blocked_peak, whole_peak);
  EXPECT_LE(blocked_peak, whole_peak / 2);
}

TEST(BlockProcessingTest, ReduceBasedStrategySpillsToLocalDisk) {
  std::vector<Record> records = TestRecords(250, 23);

  JoinConfig map_based;
  map_based.stage2 = Stage2Algorithm::kBK;
  map_based.block_processing = BlockProcessing::kMapBased;
  map_based.num_blocks = 4;
  std::vector<mr::JobMetrics> map_jobs;
  RunAndCollect(records, map_based, nullptr, &map_jobs);

  JoinConfig reduce_based = map_based;
  reduce_based.block_processing = BlockProcessing::kReduceBased;
  std::vector<mr::JobMetrics> reduce_jobs;
  RunAndCollect(records, reduce_based, nullptr, &reduce_jobs);

  ASSERT_EQ(map_jobs.size(), 1u);
  ASSERT_EQ(reduce_jobs.size(), 1u);
  // Map-based replicates blocks through the shuffle; reduce-based sends
  // each projection exactly once.
  EXPECT_GT(map_jobs[0].shuffle_records, reduce_jobs[0].shuffle_records);
}

TEST(BlockProcessingTest, RequiresBkKernel) {
  JoinConfig config;
  config.stage2 = Stage2Algorithm::kPK;
  config.block_processing = BlockProcessing::kMapBased;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fj::join
