// Robustness: corrupt or degenerate inputs must never crash a stage — bad
// lines are counted and skipped, and the rest of the data still joins.
#include <gtest/gtest.h>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"

namespace fj::join {
namespace {

TEST(RobustnessTest, CorruptLinesAreSkippedEverywhere) {
  auto records = data::GenerateRecords(data::DblpLikeConfig(100, 121));
  auto lines = data::RecordsToLines(records);
  // Interleave junk of several shapes.
  lines.insert(lines.begin(), "");
  lines.insert(lines.begin() + 20, "not a record at all");
  lines.insert(lines.begin() + 40, "xyz\tbad rid\tfields\tpayload");
  lines.insert(lines.begin() + 60, "\t\t\t");
  lines.push_back("12345");  // too few fields

  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", lines).ok());
  JoinConfig config;
  auto result = RunSelfJoin(&dfs, "records", "out", config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Stage 1 and stage 2 both counted the bad lines; stage 3 still joined.
  int64_t bad_stage1 = 0;
  for (const auto& job : result->stages[0].jobs) {
    bad_stage1 += job.counters.Get("stage1.bad_records");
  }
  EXPECT_GE(bad_stage1, 4);
  auto joined = ReadJoinedPairs(dfs, result->output_file);
  ASSERT_TRUE(joined.ok());
  EXPECT_FALSE(joined->empty());
}

TEST(RobustnessTest, RecordsWithEmptyJoinAttribute) {
  std::vector<data::Record> records{
      {1, "", "", "payload only"},
      {2, "   -- ", "...", "punctuation only"},
      {3, "real tokens here", "mcfoo", "p"},
      {4, "real tokens here", "mcfoo", "p"},
  };
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());
  JoinConfig config;
  auto result = RunSelfJoin(&dfs, "records", "out", config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto joined = ReadJoinedPairs(dfs, result->output_file);
  ASSERT_TRUE(joined.ok());
  // Only the (3, 4) pair; empty-attribute records join nothing.
  ASSERT_EQ(joined->size(), 1u);
  EXPECT_EQ((*joined)[0].first.rid, 3u);
  EXPECT_EQ((*joined)[0].second.rid, 4u);
  int64_t empty_records = 0;
  for (const auto& job : result->stages[1].jobs) {
    empty_records += job.counters.Get("stage2.empty_records");
  }
  EXPECT_EQ(empty_records, 2);
}

TEST(RobustnessTest, SingleTokenRecords) {
  // Prefix length of a 1-token set is 1; pairs of identical singletons
  // must join at similarity 1.
  std::vector<data::Record> records{
      {1, "solo", "", "p"}, {2, "solo", "", "p"}, {3, "other", "", "p"}};
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());
  for (auto stage2 : {Stage2Algorithm::kBK, Stage2Algorithm::kPK}) {
    JoinConfig config;
    config.stage2 = stage2;
    auto result = RunSelfJoin(&dfs, "records",
                              std::string("out") + Stage2Name(stage2),
                              config);
    ASSERT_TRUE(result.ok());
    auto joined = ReadJoinedPairs(dfs, result->output_file);
    ASSERT_TRUE(joined.ok());
    ASSERT_EQ(joined->size(), 1u) << Stage2Name(stage2);
    EXPECT_DOUBLE_EQ((*joined)[0].similarity, 1.0);
  }
}

TEST(RobustnessTest, AllRecordsIdentical) {
  std::vector<data::Record> records;
  for (uint64_t i = 1; i <= 25; ++i) {
    records.push_back({i, "same title every time", "mcsame", "p"});
  }
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());
  JoinConfig config;
  auto result = RunSelfJoin(&dfs, "records", "out", config);
  ASSERT_TRUE(result.ok());
  auto joined = ReadJoinedPairs(dfs, result->output_file);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), 25u * 24u / 2u);  // C(25, 2)
}

TEST(RobustnessTest, HugeRecordAmongTinyOnes) {
  std::string huge_title;
  for (int i = 0; i < 500; ++i) {
    huge_title += " tok";
    huge_title += std::to_string(i);
  }
  std::vector<data::Record> records{
      {1, "tiny title", "", "p"},
      {2, huge_title, "", "p"},
      {3, "tiny title", "", "p"},
  };
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());
  JoinConfig config;
  auto result = RunSelfJoin(&dfs, "records", "out", config);
  ASSERT_TRUE(result.ok());
  auto joined = ReadJoinedPairs(dfs, result->output_file);
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->size(), 1u);
  EXPECT_EQ((*joined)[0].first.rid, 1u);
  EXPECT_EQ((*joined)[0].second.rid, 3u);
}

TEST(RobustnessTest, RidPairsReferencingCorruptRecordsDoNotCrashStage3) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", {"1\ta b\tx\tp", "garbage"}).ok());
  ASSERT_TRUE(dfs.WriteFile("pairs",
                            {FormatRidPairLine(1, 2, 0.9), "junk pair line"})
                  .ok());
  for (auto alg : {Stage3Algorithm::kBRJ, Stage3Algorithm::kOPRJ}) {
    JoinConfig config;
    config.stage3 = alg;
    auto result = RunStage3SelfJoin(&dfs, "records", "pairs",
                                    std::string("out") + Stage3Name(alg),
                                    config);
    ASSERT_TRUE(result.ok()) << Stage3Name(alg);
    auto joined = ReadJoinedPairs(dfs, result->output_file);
    ASSERT_TRUE(joined.ok());
    EXPECT_TRUE(joined->empty());  // rid 2 does not exist
  }
}

}  // namespace
}  // namespace fj::join
