// Stage-2 (kernel) unit tests: BK and PK must agree pair-for-pair under
// both routing strategies; the composite-key machinery (partition on group,
// secondary sort on length) must bound PK's resident memory; duplicate
// pairs across groups are expected and byte-identical; filter counters
// fire.
#include "fuzzyjoin/stage2.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/generator.h"
#include "fuzzyjoin/stage1.h"
#include "mapreduce/dfs.h"

namespace fj::join {
namespace {

struct Stage2Run {
  std::set<std::pair<uint64_t, uint64_t>> pairs;  // deduplicated
  size_t raw_lines = 0;                           // with duplicates
  mr::JobMetrics metrics;
};

Stage2Run RunKernel(mr::Dfs* dfs, const JoinConfig& config) {
  auto result =
      RunStage2SelfJoin(dfs, "records", "ordering",
                        "pairs-" + std::string(Stage2Name(config.stage2)) +
                            std::to_string(config.num_groups) +
                            (config.routing == TokenRouting::kGroupedTokens
                                 ? "g"
                                 : "i"),
                        config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  Stage2Run run;
  if (!result.ok()) return run;
  run.metrics = result->jobs.at(0);
  auto lines = dfs->ReadFile(result->pairs_file);
  EXPECT_TRUE(lines.ok());
  run.raw_lines = lines.value()->size();
  for (const auto& line : *lines.value()) {
    auto parsed = ParseRidPairLine(line);
    EXPECT_TRUE(parsed.ok()) << line;
    auto [rid1, rid2, sim] = parsed.value();
    EXPECT_LT(rid1, rid2);
    EXPECT_GE(sim, 0.8 - 1e-9);
    run.pairs.emplace(rid1, rid2);
  }
  return run;
}

class Stage2Test : public testing::Test {
 protected:
  void SetUp() override {
    auto config = data::DblpLikeConfig(350, 41);
    config.payload_bytes = 16;
    auto records = data::GenerateRecords(config);
    ASSERT_TRUE(dfs_.WriteFile("records", data::RecordsToLines(records)).ok());
    JoinConfig join_config;
    ASSERT_TRUE(RunStage1(&dfs_, "records", "ordering", join_config).ok());
  }

  mr::Dfs dfs_;
};

TEST_F(Stage2Test, BkAndPkProduceIdenticalPairSets) {
  JoinConfig bk;
  bk.stage2 = Stage2Algorithm::kBK;
  JoinConfig pk;
  pk.stage2 = Stage2Algorithm::kPK;
  auto bk_run = RunKernel(&dfs_, bk);
  auto pk_run = RunKernel(&dfs_, pk);
  EXPECT_EQ(bk_run.pairs, pk_run.pairs);
  EXPECT_FALSE(bk_run.pairs.empty());
}

TEST_F(Stage2Test, RoutingStrategiesProduceIdenticalPairSets) {
  JoinConfig individual;
  individual.routing = TokenRouting::kIndividualTokens;
  auto individual_run = RunKernel(&dfs_, individual);
  for (uint32_t groups : {1u, 4u, 64u}) {
    JoinConfig grouped;
    grouped.routing = TokenRouting::kGroupedTokens;
    grouped.num_groups = groups;
    auto grouped_run = RunKernel(&dfs_, grouped);
    EXPECT_EQ(grouped_run.pairs, individual_run.pairs)
        << groups << " groups";
  }
}

TEST_F(Stage2Test, FewerGroupsMeanFewerReplicasShuffled) {
  // Grouped routing with few groups coalesces prefix tokens, so fewer
  // (key, projection) replicas cross the shuffle (Section 3.2's motivation
  // for grouped tokens).
  JoinConfig individual;
  individual.routing = TokenRouting::kIndividualTokens;
  JoinConfig one_group;
  one_group.routing = TokenRouting::kGroupedTokens;
  one_group.num_groups = 1;
  auto individual_run = RunKernel(&dfs_, individual);
  auto one_group_run = RunKernel(&dfs_, one_group);
  EXPECT_LT(one_group_run.metrics.shuffle_records,
            individual_run.metrics.shuffle_records);
}

TEST_F(Stage2Test, DuplicatePairLinesAreByteIdentical) {
  // The same pair verified in several reducers must serialize identically
  // (stage 3 deduplicates by string equality).
  JoinConfig config;
  config.stage2 = Stage2Algorithm::kBK;
  auto result = RunStage2SelfJoin(&dfs_, "records", "ordering", "dups", config);
  ASSERT_TRUE(result.ok());
  auto lines = dfs_.ReadFile("dups").value();
  std::map<std::pair<uint64_t, uint64_t>, std::set<std::string>> variants;
  for (const auto& line : *lines) {
    auto [rid1, rid2, sim] = ParseRidPairLine(line).value();
    (void)sim;
    variants[{rid1, rid2}].insert(line);
  }
  bool saw_duplicate = false;
  for (const auto& [pair, forms] : variants) {
    EXPECT_EQ(forms.size(), 1u)
        << "pair " << pair.first << "," << pair.second
        << " serialized in multiple forms";
    saw_duplicate = true;
  }
  EXPECT_TRUE(saw_duplicate);
}

TEST_F(Stage2Test, PkEvictionBoundsResidentMemory) {
  JoinConfig pk;
  pk.stage2 = Stage2Algorithm::kPK;
  pk.routing = TokenRouting::kGroupedTokens;
  pk.num_groups = 1;  // one giant group -> eviction actually matters
  pk.num_reduce_tasks = 1;
  auto run = RunKernel(&dfs_, pk);
  int64_t peak = run.metrics.counters.Get("stage2.pk.peak_resident_tokens");
  int64_t evicted = run.metrics.counters.Get("stage2.pk.evicted_records");
  ASSERT_GT(peak, 0);
  EXPECT_GT(evicted, 0) << "length filter never evicted despite one group";
  // Peak resident tokens must be below the total token volume shuffled.
  int64_t total_tokens = 0;
  auto lines = dfs_.ReadFile("records").value();
  total_tokens = static_cast<int64_t>(lines->size()) * 8;  // ~8 tokens/record
  EXPECT_LT(peak, total_tokens);
}

TEST_F(Stage2Test, PkFilterCountersFire) {
  JoinConfig pk;
  pk.stage2 = Stage2Algorithm::kPK;
  auto run = RunKernel(&dfs_, pk);
  const auto& counters = run.metrics.counters;
  EXPECT_GT(counters.Get("stage2.pk.probes"), 0);
  EXPECT_GT(counters.Get("stage2.pk.candidates"), 0);
  EXPECT_GT(counters.Get("stage2.pk.results"), 0);
  EXPECT_GE(counters.Get("stage2.pk.candidates"),
            counters.Get("stage2.pk.verified"));
}

TEST_F(Stage2Test, BkLengthFilterCounterFires) {
  JoinConfig bk;
  bk.stage2 = Stage2Algorithm::kBK;
  auto run = RunKernel(&dfs_, bk);
  const auto& counters = run.metrics.counters;
  EXPECT_GT(counters.Get("stage2.bk.pairs_considered"), 0);
  EXPECT_GT(counters.Get("stage2.bk.length_filtered"), 0);
  EXPECT_GT(counters.Get("stage2.bk.results"), 0);
}

TEST(Stage2ProjectionTest, ProjectionsNotWholeRecordsAreShuffled) {
  // The paper's projection decision: with realistic record sizes (payload
  // dominates), stage-2 shuffle bytes stay below the raw input bytes even
  // though projections are replicated per prefix token — the kernel never
  // carries the payload.
  auto records = data::GenerateRecords(data::DblpLikeConfig(350, 41));
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());
  JoinConfig config;
  ASSERT_TRUE(RunStage1(&dfs, "records", "ordering", config).ok());
  config.stage2 = Stage2Algorithm::kPK;
  auto run = RunKernel(&dfs, config);
  auto input_bytes = dfs.FileBytes("records").value();
  EXPECT_LT(run.metrics.shuffle_bytes, input_bytes);
}

TEST(Stage2EdgeTest, MissingOrderingFileFails) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", {"1\tt\ta\tp"}).ok());
  JoinConfig config;
  auto result = RunStage2SelfJoin(&dfs, "records", "no-ordering", "out", config);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(Stage2EdgeTest, PairLineRoundTrip) {
  std::string line = FormatRidPairLine(12, 99, 0.8125);
  auto parsed = ParseRidPairLine(line);
  ASSERT_TRUE(parsed.ok());
  auto [rid1, rid2, sim] = parsed.value();
  EXPECT_EQ(rid1, 12u);
  EXPECT_EQ(rid2, 99u);
  EXPECT_NEAR(sim, 0.8125, 1e-9);
  EXPECT_FALSE(ParseRidPairLine("1\t2").ok());
  EXPECT_FALSE(ParseRidPairLine("1\t2\tx").ok());
}

}  // namespace
}  // namespace fj::join
