// Checkpoint/resume contract tests: a pipeline killed after stage 2
// resumes from its manifest re-running only stage 3 and produces
// byte-identical output; a manifest from a different configuration is
// refused; a corrupted checkpoint re-runs its stage instead of feeding bad
// data forward; and a fully completed run resumes as a no-op.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"
#include "fuzzyjoin/manifest.h"

namespace fj::join {
namespace {

std::vector<std::string> SelfInputLines() {
  auto config = data::DblpLikeConfig(220, 17);
  config.payload_bytes = 24;
  return data::RecordsToLines(data::GenerateRecords(config));
}

std::vector<std::string> OuterInputLines() {
  auto config = data::CiteseerxLikeConfig(150, 23);
  config.payload_bytes = 24;
  return data::RecordsToLines(data::GenerateRecords(config));
}

JoinConfig BaseConfig() {
  JoinConfig config;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 3;
  return config;
}

// A plan that kills stage 3 permanently (every attempt of reduce task 0
// of any stage-3 job crashes immediately).
std::shared_ptr<const mr::FaultPlan> KillStage3Plan() {
  auto plan = std::make_shared<mr::FaultPlan>();
  plan->faults.push_back(
      mr::FaultSpec{.phase = mr::TaskPhase::kReduce,
                    .task_id = 0,
                    .failing_attempts = mr::FaultSpec::kAllAttempts,
                    .crash_after_records = 0,
                    .job_substring = "stage3"});
  return plan;
}

const std::vector<std::string>& Lines(const mr::Dfs& dfs,
                                      const std::string& file) {
  auto lines = dfs.ReadFile(file);
  EXPECT_TRUE(lines.ok()) << file << ": " << lines.status().ToString();
  return *lines.value();
}

TEST(ResumeTest, ResumesAfterPermanentStage3KillRunningOnlyStage3) {
  // Golden output from an undisturbed run in its own Dfs.
  mr::Dfs golden_dfs;
  ASSERT_TRUE(golden_dfs.WriteFile("records", SelfInputLines()).ok());
  auto golden = RunSelfJoin(&golden_dfs, "records", "out", BaseConfig());
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();

  // Run 1: stage 3 is cursed — stages 1 and 2 commit, then the pipeline
  // dies. The manifest records exactly the two committed stages.
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());
  auto doomed_config = BaseConfig();
  doomed_config.fault_plan = KillStage3Plan();
  auto doomed = RunSelfJoin(&dfs, "records", "out", doomed_config);
  ASSERT_FALSE(doomed.ok());
  EXPECT_TRUE(dfs.Exists("out.ordering"));
  EXPECT_TRUE(dfs.Exists("out.ridpairs"));
  EXPECT_FALSE(dfs.Exists("out.joined"));
  auto manifest = LoadManifest(dfs, "out.manifest");
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest->stages.size(), 2u);
  EXPECT_EQ(manifest->stages[0].stage_name, "1-BTO");
  EXPECT_EQ(manifest->stages[1].stage_name, "2-PK");

  // Run 2: same configuration, faults gone, resume on. Stages 1-2 are
  // skipped (zero jobs — the job-count bookkeeping proves nothing re-ran),
  // stage 3 executes, and the output is byte-identical to the golden run.
  auto resume_config = BaseConfig();
  resume_config.resume = true;
  auto resumed = RunSelfJoin(&dfs, "records", "out", resume_config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed->stages.size(), 3u);
  EXPECT_TRUE(resumed->stages[0].resumed_from_checkpoint);
  EXPECT_TRUE(resumed->stages[1].resumed_from_checkpoint);
  EXPECT_FALSE(resumed->stages[2].resumed_from_checkpoint);
  EXPECT_TRUE(resumed->stages[0].jobs.empty());
  EXPECT_TRUE(resumed->stages[1].jobs.empty());
  EXPECT_FALSE(resumed->stages[2].jobs.empty());
  EXPECT_EQ(Lines(dfs, "out.joined"), Lines(golden_dfs, "out.joined"));

  // The completed run's manifest now records all three stages.
  auto completed = LoadManifest(dfs, "out.manifest");
  ASSERT_TRUE(completed.ok());
  EXPECT_EQ(completed->stages.size(), 3u);
}

TEST(ResumeTest, CrashBetweenTempWriteAndRenameLeavesNoPartialOutput) {
  // The output-commit protocol is write-temp-then-RenameFile. A process
  // killed in the window between the two leaves "<name>.__commit" behind
  // but must never expose a partial "<name>" — and a resume over that
  // wreckage has to re-run the stage cleanly (adopting nothing from the
  // temp) and converge on byte-identical output.
  mr::Dfs golden_dfs;
  ASSERT_TRUE(golden_dfs.WriteFile("records", SelfInputLines()).ok());
  auto golden = RunSelfJoin(&golden_dfs, "records", "out", BaseConfig());
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();

  // Stages 1-2 commit, stage 3 dies...
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());
  auto doomed_config = BaseConfig();
  doomed_config.fault_plan = KillStage3Plan();
  ASSERT_FALSE(RunSelfJoin(&dfs, "records", "out", doomed_config).ok());

  // ...and we reconstruct the crash window by hand: the stage-3 job wrote
  // its temp (here: a half-finished, wrong prefix of the real output) and
  // was killed before RenameFile.
  std::vector<std::string> partial(Lines(golden_dfs, "out.joined"));
  ASSERT_GT(partial.size(), 1u);
  partial.resize(partial.size() / 2);
  ASSERT_TRUE(dfs.WriteFile("out.joined.__commit", partial).ok());

  // The crash-window invariant: no observer ever sees a partial output
  // under the committed name.
  EXPECT_FALSE(dfs.Exists("out.joined"));
  EXPECT_FALSE(dfs.ReadFile("out.joined").ok());

  // Resume re-runs stage 3, discards the orphaned temp instead of
  // adopting or colliding with it, and lands the full output.
  auto resume_config = BaseConfig();
  resume_config.resume = true;
  auto resumed = RunSelfJoin(&dfs, "records", "out", resume_config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(Lines(dfs, "out.joined"), Lines(golden_dfs, "out.joined"));
  EXPECT_FALSE(dfs.Exists("out.joined.__commit"));
}

TEST(ResumeTest, FingerprintMismatchRefusesToResume) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());
  auto doomed_config = BaseConfig();
  doomed_config.fault_plan = KillStage3Plan();
  ASSERT_FALSE(RunSelfJoin(&dfs, "records", "out", doomed_config).ok());

  // Different tau — the checkpointed ordering and RID pairs are useless.
  auto changed = BaseConfig();
  changed.resume = true;
  changed.tau = 0.9;
  auto refused = RunSelfJoin(&dfs, "records", "out", changed);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  // Different input content refuses too.
  mr::Dfs dfs2;
  ASSERT_TRUE(dfs2.WriteFile("records", SelfInputLines()).ok());
  ASSERT_FALSE(RunSelfJoin(&dfs2, "records", "out", doomed_config).ok());
  ASSERT_TRUE(dfs2.DeleteFile("records").ok());
  auto other_input = SelfInputLines();
  other_input.pop_back();
  ASSERT_TRUE(dfs2.WriteFile("records", std::move(other_input)).ok());
  auto resume_config = BaseConfig();
  resume_config.resume = true;
  auto refused2 = RunSelfJoin(&dfs2, "records", "out", resume_config);
  ASSERT_FALSE(refused2.ok());
  EXPECT_EQ(refused2.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ResumeTest, CompletedRunResumesAsNoOp) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());
  auto first = RunSelfJoin(&dfs, "records", "out", BaseConfig());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::vector<std::string> output = Lines(dfs, "out.joined");

  auto resume_config = BaseConfig();
  resume_config.resume = true;
  auto resumed = RunSelfJoin(&dfs, "records", "out", resume_config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  for (const auto& stage : resumed->stages) {
    EXPECT_TRUE(stage.resumed_from_checkpoint) << stage.stage_name;
    EXPECT_TRUE(stage.jobs.empty()) << stage.stage_name;
  }
  EXPECT_EQ(Lines(dfs, "out.joined"), output);
}

TEST(ResumeTest, CorruptedCheckpointReRunsItsStageAndEverythingAfter) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());
  auto first = RunSelfJoin(&dfs, "records", "out", BaseConfig());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::vector<std::string> output = Lines(dfs, "out.joined");

  // Bit-rot the stage-2 checkpoint. Resume must NOT trust it: stage 1 is
  // still clean and resumes, stages 2 and 3 re-run from scratch.
  ASSERT_TRUE(dfs.CorruptByteForTest("out.ridpairs", 5).ok());
  auto resume_config = BaseConfig();
  resume_config.resume = true;
  auto resumed = RunSelfJoin(&dfs, "records", "out", resume_config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed->stages.size(), 3u);
  EXPECT_TRUE(resumed->stages[0].resumed_from_checkpoint);
  EXPECT_FALSE(resumed->stages[1].resumed_from_checkpoint);
  EXPECT_FALSE(resumed->stages[2].resumed_from_checkpoint);
  EXPECT_EQ(Lines(dfs, "out.joined"), output);
  // The re-written RID pairs verify again.
  EXPECT_TRUE(dfs.VerifyFile("out.ridpairs").ok());
}

TEST(ResumeTest, ResumeWithoutManifestRunsEverything) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());
  auto config = BaseConfig();
  config.resume = true;
  auto result = RunSelfJoin(&dfs, "records", "out", config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& stage : result->stages) {
    EXPECT_FALSE(stage.resumed_from_checkpoint) << stage.stage_name;
    EXPECT_FALSE(stage.jobs.empty()) << stage.stage_name;
  }
}

TEST(ResumeTest, RSJoinResumesAfterStage3Kill) {
  mr::Dfs golden_dfs;
  ASSERT_TRUE(golden_dfs.WriteFile("r", SelfInputLines()).ok());
  ASSERT_TRUE(golden_dfs.WriteFile("s", OuterInputLines()).ok());
  auto golden = RunRSJoin(&golden_dfs, "r", "s", "out", BaseConfig());
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();

  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("r", SelfInputLines()).ok());
  ASSERT_TRUE(dfs.WriteFile("s", OuterInputLines()).ok());
  auto doomed_config = BaseConfig();
  doomed_config.fault_plan = KillStage3Plan();
  ASSERT_FALSE(RunRSJoin(&dfs, "r", "s", "out", doomed_config).ok());

  auto resume_config = BaseConfig();
  resume_config.resume = true;
  auto resumed = RunRSJoin(&dfs, "r", "s", "out", resume_config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed->stages.size(), 3u);
  EXPECT_TRUE(resumed->stages[0].resumed_from_checkpoint);
  EXPECT_TRUE(resumed->stages[1].resumed_from_checkpoint);
  EXPECT_FALSE(resumed->stages[2].resumed_from_checkpoint);
  EXPECT_EQ(Lines(dfs, "out.joined"), Lines(golden_dfs, "out.joined"));
}

TEST(ResumeTest, ResumeIsTransparentToVerificationChanges) {
  // verify_integrity is byte-transparent, so it is excluded from the
  // fingerprint: a run executed without verification resumes under it.
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());
  auto doomed_config = BaseConfig();
  doomed_config.fault_plan = KillStage3Plan();
  ASSERT_FALSE(RunSelfJoin(&dfs, "records", "out", doomed_config).ok());

  auto resume_config = BaseConfig();
  resume_config.resume = true;
  resume_config.verify_integrity = true;
  auto resumed = RunSelfJoin(&dfs, "records", "out", resume_config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->stages[0].resumed_from_checkpoint);
  EXPECT_TRUE(resumed->stages[1].resumed_from_checkpoint);
}

TEST(ResumeTest, ManifestRoundTripsThroughTheDfs) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("a", {"x"}).ok());
  Manifest manifest;
  manifest.fingerprint = 0xdeadbeefcafe1234ULL;
  manifest.stages.push_back(
      ManifestStage{"1-BTO", {{"a", dfs.FileChecksum("a").value()}}});
  manifest.stages.push_back(ManifestStage{"2-PK", {{"b", 42}, {"c=d", 7}}});
  ASSERT_TRUE(SaveManifest(&dfs, "m", manifest).ok());
  // Saving again replaces atomically instead of failing on the old file.
  ASSERT_TRUE(SaveManifest(&dfs, "m", manifest).ok());
  EXPECT_FALSE(dfs.Exists("m.__commit"));

  auto loaded = LoadManifest(dfs, "m");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->fingerprint, manifest.fingerprint);
  ASSERT_EQ(loaded->stages.size(), 2u);
  EXPECT_EQ(loaded->stages[0].stage_name, "1-BTO");
  EXPECT_EQ(loaded->stages[0].outputs, manifest.stages[0].outputs);
  // File names containing '=' survive (the parser splits on the LAST '=').
  EXPECT_EQ(loaded->stages[1].outputs,
            manifest.stages[1].outputs);
  EXPECT_EQ(LoadManifest(dfs, "missing").status().code(),
            StatusCode::kNotFound);
}

TEST(ResumeTest, FingerprintTracksResultAffectingKnobsOnly) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"1\tt\ta\tp"}).ok());
  JoinConfig base;
  uint64_t fp = PipelineFingerprint(base, dfs, {"in"}).value();

  JoinConfig tau = base;
  tau.tau = 0.7;
  EXPECT_NE(PipelineFingerprint(tau, dfs, {"in"}).value(), fp);

  JoinConfig tasks = base;
  tasks.num_reduce_tasks = 5;  // changes output line order
  EXPECT_NE(PipelineFingerprint(tasks, dfs, {"in"}).value(), fp);

  // The record format changes checkpointed intermediate bytes, so a run
  // started as text must not resume as binary (and vice versa) — and the
  // codec changes the encoded run blocks a resumed attempt would re-read.
  JoinConfig binary = base;
  binary.record_format = mr::RecordFormat::kBinary;
  uint64_t binary_fp = PipelineFingerprint(binary, dfs, {"in"}).value();
  EXPECT_NE(binary_fp, fp);
  JoinConfig packed = binary;
  packed.block_codec = mr::BlockCodec::kFjlz;
  EXPECT_NE(PipelineFingerprint(packed, dfs, {"in"}).value(), binary_fp);

  // Byte-transparent knobs leave the fingerprint alone.
  JoinConfig transparent = base;
  transparent.verify_integrity = true;
  transparent.sort_buffer_bytes = 256;
  transparent.local_threads = 4;
  transparent.fault_plan = std::make_shared<mr::FaultPlan>();
  EXPECT_EQ(PipelineFingerprint(transparent, dfs, {"in"}).value(), fp);

  EXPECT_EQ(PipelineFingerprint(base, dfs, {"nope"}).status().code(),
            StatusCode::kNotFound);
}

TEST(ResumeTest, HandEditedManifestRefusesCleanly) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());
  ASSERT_TRUE(RunSelfJoin(&dfs, "records", "out", BaseConfig()).ok());
  ASSERT_TRUE(dfs.DeleteFile("out.manifest").ok());
  ASSERT_TRUE(dfs.WriteFile("out.manifest", {"garbage header"}).ok());

  auto resume_config = BaseConfig();
  resume_config.resume = true;
  auto refused = RunSelfJoin(&dfs, "records", "out", resume_config);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace fj::join