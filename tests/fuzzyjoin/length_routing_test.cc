// Length-based secondary routing for the BK kernel (Section 5, first
// paragraph): must be result-identical to plain BK while partitioning the
// reducer groups further (smaller peak memory per group).
#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"

namespace fj::join {
namespace {

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

struct Outcome {
  PairSet pairs;
  int64_t peak_group = 0;
  uint64_t shuffle_records = 0;
};

Outcome RunPipeline(const std::vector<data::Record>& records, JoinConfig config) {
  mr::Dfs dfs;
  EXPECT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());
  Outcome outcome;
  auto result = RunSelfJoin(&dfs, "records", "out", config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return outcome;
  auto joined = ReadJoinedPairs(dfs, result->output_file);
  EXPECT_TRUE(joined.ok());
  for (const auto& jp : *joined) {
    outcome.pairs.emplace(jp.first.rid, jp.second.rid);
  }
  const auto& kernel_job = result->stages[1].jobs[0];
  outcome.peak_group = kernel_job.counters.Get("stage2.peak_group_records");
  outcome.shuffle_records = kernel_job.shuffle_records;
  return outcome;
}

class LengthRoutingTest : public testing::TestWithParam<uint32_t> {};

TEST_P(LengthRoutingTest, ResultsIdenticalToPlainBK) {
  auto config = data::DblpLikeConfig(350, 71);
  config.payload_bytes = 16;
  // Widen the record-length spread so length classes matter.
  config.title_tokens_min = 3;
  config.title_tokens_max = 24;
  auto records = data::GenerateRecords(config);

  JoinConfig plain;
  plain.stage2 = Stage2Algorithm::kBK;
  auto baseline = RunPipeline(records, plain);
  ASSERT_FALSE(baseline.pairs.empty());

  JoinConfig routed = plain;
  routed.bk_length_routing = true;
  routed.length_class_width = GetParam();
  auto outcome = RunPipeline(records, routed);
  EXPECT_EQ(outcome.pairs, baseline.pairs)
      << "class width " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Widths, LengthRoutingTest,
                         testing::Values(1u, 2u, 4u, 16u, 100u),
                         [](const testing::TestParamInfo<uint32_t>& info) {
                           return "width" + std::to_string(info.param);
                         });

TEST(LengthRoutingTest, PartitionsGroupsFurther) {
  auto config = data::DblpLikeConfig(500, 72);
  config.payload_bytes = 16;
  config.title_tokens_min = 3;
  config.title_tokens_max = 30;
  auto records = data::GenerateRecords(config);

  JoinConfig plain;
  plain.stage2 = Stage2Algorithm::kBK;
  plain.routing = TokenRouting::kGroupedTokens;
  plain.num_groups = 2;  // big groups, so the extra partitioning shows
  auto baseline = RunPipeline(records, plain);

  JoinConfig routed = plain;
  routed.bk_length_routing = true;
  routed.length_class_width = 2;
  auto outcome = RunPipeline(records, routed);

  EXPECT_EQ(outcome.pairs, baseline.pairs);
  // The paper's claim: the additional routing criterion decreases the
  // amount of data a reducer must hold...
  EXPECT_LT(outcome.peak_group, baseline.peak_group);
  // ...at the price of replicating records across classes.
  EXPECT_GT(outcome.shuffle_records, baseline.shuffle_records);
}

TEST(LengthRoutingTest, ValidationRules) {
  JoinConfig config;
  config.bk_length_routing = true;
  config.stage2 = Stage2Algorithm::kPK;
  EXPECT_FALSE(config.Validate().ok());
  config.stage2 = Stage2Algorithm::kBK;
  EXPECT_TRUE(config.Validate().ok());
  config.block_processing = BlockProcessing::kMapBased;
  EXPECT_FALSE(config.Validate().ok());
  config.block_processing = BlockProcessing::kNone;
  config.length_class_width = 0;
  EXPECT_FALSE(config.Validate().ok());
}

}  // namespace
}  // namespace fj::join
