// Contract checks over the real pipelines: every paper variant (stage 1
// BTO/OPTO x stage 2 BK/PK x stage 3 BRJ/OPRJ, self-join and R-S join)
// must pass the contract checker — the drivers' comparators, partitioners
// and combiners are lawful — and produce byte-identical output with
// checking on and off. This is the "checks never change answers, only
// detect broken jobs" guarantee.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"

namespace fj::join {
namespace {

struct Variant {
  Stage1Algorithm stage1;
  Stage2Algorithm stage2;
  Stage3Algorithm stage3;
  const char* name;
};

const Variant kVariants[] = {
    {Stage1Algorithm::kBTO, Stage2Algorithm::kBK, Stage3Algorithm::kBRJ,
     "bto-bk-brj"},
    {Stage1Algorithm::kBTO, Stage2Algorithm::kPK, Stage3Algorithm::kOPRJ,
     "bto-pk-oprj"},
    {Stage1Algorithm::kOPTO, Stage2Algorithm::kBK, Stage3Algorithm::kOPRJ,
     "opto-bk-oprj"},
    {Stage1Algorithm::kOPTO, Stage2Algorithm::kPK, Stage3Algorithm::kBRJ,
     "opto-pk-brj"},
};

JoinConfig VariantConfig(const Variant& v, bool check) {
  JoinConfig config;
  config.stage1 = v.stage1;
  config.stage2 = v.stage2;
  config.stage3 = v.stage3;
  config.check_contracts = check;
  config.contract_sample_every = 1;  // exhaustive: every key sampled
  return config;
}

uint64_t TotalContractChecks(const JoinRunResult& result) {
  uint64_t total = 0;
  for (const auto& stage : result.stages) {
    for (const auto& job : stage.jobs) total += job.contract_checks;
  }
  return total;
}

const std::vector<std::string>* ReadLines(const mr::Dfs& dfs,
                                          const std::string& file) {
  auto lines = dfs.ReadFile(file);
  EXPECT_TRUE(lines.ok()) << file;
  return lines.ok() ? lines.value() : nullptr;
}

TEST(ContractPipelineTest, SelfJoinVariantsPassChecksByteIdentically) {
  mr::Dfs dfs;
  auto gen = data::DblpLikeConfig(250, 77);
  gen.payload_bytes = 12;
  ASSERT_TRUE(
      dfs.WriteFile("records",
                    data::RecordsToLines(data::GenerateRecords(gen)))
          .ok());

  for (const auto& v : kVariants) {
    auto off = RunSelfJoin(&dfs, "records", std::string("off-") + v.name,
                           VariantConfig(v, false));
    ASSERT_TRUE(off.ok()) << v.name << ": " << off.status().ToString();
    auto on = RunSelfJoin(&dfs, "records", std::string("on-") + v.name,
                          VariantConfig(v, true));
    ASSERT_TRUE(on.ok()) << v.name << ": " << on.status().ToString();

    const auto* lines_off = ReadLines(dfs, off->output_file);
    const auto* lines_on = ReadLines(dfs, on->output_file);
    ASSERT_NE(lines_off, nullptr);
    ASSERT_NE(lines_on, nullptr);
    EXPECT_EQ(*lines_off, *lines_on) << v.name;
    EXPECT_FALSE(lines_on->empty()) << v.name;

    // The drivers really were checked — and an unchecked run is not.
    EXPECT_GT(TotalContractChecks(*on), 0u) << v.name;
    EXPECT_EQ(TotalContractChecks(*off), 0u) << v.name;
  }
}

TEST(ContractPipelineTest, RSJoinVariantsPassChecksByteIdentically) {
  mr::Dfs dfs;
  auto r_gen = data::DblpLikeConfig(150, 31);
  r_gen.payload_bytes = 12;
  auto s_gen = data::DblpLikeConfig(200, 32);
  s_gen.payload_bytes = 12;
  ASSERT_TRUE(
      dfs.WriteFile("r", data::RecordsToLines(data::GenerateRecords(r_gen)))
          .ok());
  ASSERT_TRUE(
      dfs.WriteFile("s", data::RecordsToLines(data::GenerateRecords(s_gen)))
          .ok());

  for (const auto& v : kVariants) {
    auto off = RunRSJoin(&dfs, "r", "s", std::string("off-") + v.name,
                         VariantConfig(v, false));
    ASSERT_TRUE(off.ok()) << v.name << ": " << off.status().ToString();
    auto on = RunRSJoin(&dfs, "r", "s", std::string("on-") + v.name,
                        VariantConfig(v, true));
    ASSERT_TRUE(on.ok()) << v.name << ": " << on.status().ToString();

    const auto* lines_off = ReadLines(dfs, off->output_file);
    const auto* lines_on = ReadLines(dfs, on->output_file);
    ASSERT_NE(lines_off, nullptr);
    ASSERT_NE(lines_on, nullptr);
    EXPECT_EQ(*lines_off, *lines_on) << v.name;

    EXPECT_GT(TotalContractChecks(*on), 0u) << v.name;
    EXPECT_EQ(TotalContractChecks(*off), 0u) << v.name;
  }
}

}  // namespace
}  // namespace fj::join
