// Stage-1 (token ordering) unit tests: BTO and OPTO must agree with each
// other and with an in-memory count, the ordering must be increasing in
// frequency, and the combiner must cut the counting job's shuffle.
#include "fuzzyjoin/stage1.h"

#include <gtest/gtest.h>

#include <map>

#include "common/string_util.h"
#include "data/generator.h"
#include "data/record.h"
#include "text/token_ordering.h"
#include "text/tokenizer.h"

namespace fj::join {
namespace {

std::vector<std::string> TestLines() {
  std::vector<data::Record> records{
      {1, "A B C", "", "p"},
      {2, "B C D", "", "p"},
      {3, "C D", "", "p"},
      {4, "D", "", "p"},
  };
  return data::RecordsToLines(records);
}

TEST(Stage1Test, BtoComputesIncreasingFrequencyOrder) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", TestLines()).ok());
  JoinConfig config;
  config.stage1 = Stage1Algorithm::kBTO;
  auto result = RunStage1(&dfs, "in", "ordering", config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->jobs.size(), 2u);  // count + sort phases

  auto lines = dfs.ReadFile("ordering");
  ASSERT_TRUE(lines.ok());
  // a:1 b:2 c:3 d:3 -> a, b, then c before d (tie broken by token).
  EXPECT_EQ(*lines.value(),
            (std::vector<std::string>{"a\t1", "b\t2", "c\t3", "d\t3"}));
}

TEST(Stage1Test, OptoSingleJobSameOrdering) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", TestLines()).ok());
  JoinConfig config;
  config.stage1 = Stage1Algorithm::kOPTO;
  auto result = RunStage1(&dfs, "in", "ordering", config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->jobs.size(), 1u);
  EXPECT_EQ(result->jobs[0].reduce_tasks.size(), 1u);  // single reducer
  EXPECT_EQ(*dfs.ReadFile("ordering").value(),
            (std::vector<std::string>{"a\t1", "b\t2", "c\t3", "d\t3"}));
}

TEST(Stage1Test, BtoAndOptoAgreeOnRealisticData) {
  auto records = data::GenerateRecords(data::DblpLikeConfig(400, 13));
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", data::RecordsToLines(records)).ok());

  JoinConfig bto;
  bto.stage1 = Stage1Algorithm::kBTO;
  ASSERT_TRUE(RunStage1(&dfs, "in", "bto", bto).ok());
  JoinConfig opto;
  opto.stage1 = Stage1Algorithm::kOPTO;
  ASSERT_TRUE(RunStage1(&dfs, "in", "opto", opto).ok());

  EXPECT_EQ(*dfs.ReadFile("bto").value(), *dfs.ReadFile("opto").value());

  // And both agree with a direct in-memory count.
  text::WordTokenizer tokenizer;
  std::map<std::string, uint64_t> counts;
  for (const auto& r : records) {
    for (const auto& t : tokenizer.Tokenize(r.JoinAttribute())) counts[t]++;
  }
  auto expected =
      text::TokenOrdering::FromCounts({counts.begin(), counts.end()});
  EXPECT_EQ(*dfs.ReadFile("bto").value(), expected.ToLines());
}

TEST(Stage1Test, OrderingParsesAndIsMonotone) {
  auto records = data::GenerateRecords(data::DblpLikeConfig(200, 14));
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", data::RecordsToLines(records)).ok());
  JoinConfig config;
  ASSERT_TRUE(RunStage1(&dfs, "in", "ordering", config).ok());
  auto parsed = text::TokenOrdering::FromLines(*dfs.ReadFile("ordering").value());
  ASSERT_TRUE(parsed.ok());
  for (size_t rank = 1; rank < parsed->size(); ++rank) {
    EXPECT_LE(parsed->FrequencyOfRank(rank - 1), parsed->FrequencyOfRank(rank));
  }
}

TEST(Stage1Test, CombinerShrinksCountJobShuffle) {
  // The count job's map output is one pair per token *occurrence*; the
  // combiner collapses per-task duplicates, so shuffle records must be
  // well below map output records on skewed data.
  auto records = data::GenerateRecords(data::DblpLikeConfig(500, 15));
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", data::RecordsToLines(records)).ok());
  JoinConfig config;
  config.stage1 = Stage1Algorithm::kBTO;
  config.num_map_tasks = 4;
  auto result = RunStage1(&dfs, "in", "ordering", config);
  ASSERT_TRUE(result.ok());
  const auto& count_job = result->jobs[0];
  EXPECT_LT(count_job.shuffle_records, count_job.map_output_records / 2);
}

TEST(Stage1Test, CombinerIsPurelyAnOptimization) {
  // Disabling the combiner must not change the ordering, for either
  // algorithm — only the shuffle volume.
  auto records = data::GenerateRecords(data::DblpLikeConfig(300, 16));
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", data::RecordsToLines(records)).ok());
  for (auto alg : {Stage1Algorithm::kBTO, Stage1Algorithm::kOPTO}) {
    JoinConfig with, without;
    with.stage1 = without.stage1 = alg;
    without.use_stage1_combiner = false;
    std::string name = Stage1Name(alg);
    auto r1 = RunStage1(&dfs, "in", name + "-on", with);
    auto r2 = RunStage1(&dfs, "in", name + "-off", without);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(*dfs.ReadFile(name + "-on").value(),
              *dfs.ReadFile(name + "-off").value());
    EXPECT_LT(r1->jobs[0].shuffle_records, r2->jobs[0].shuffle_records);
  }
}

TEST(Stage1Test, MalformedRecordsAreCountedAndSkipped) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("in", {"garbage line", TestLines()[0]}).ok());
  JoinConfig config;
  auto result = RunStage1(&dfs, "in", "ordering", config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->jobs[0].counters.Get("stage1.bad_records"), 1);
  EXPECT_EQ(dfs.ReadFile("ordering").value()->size(), 3u);  // a, b, c
}

TEST(Stage1Test, QGramTokenizerIsHonored) {
  mr::Dfs dfs;
  ASSERT_TRUE(
      dfs.WriteFile("in", {data::Record{1, "ab", "", "p"}.ToLine()}).ok());
  JoinConfig config;
  config.tokenizer = std::make_shared<text::QGramTokenizer>(2);
  auto result = RunStage1(&dfs, "in", "ordering", config);
  ASSERT_TRUE(result.ok());
  // "ab " + authors "" -> join attr "ab " -> "$ab#" -> $a, ab, b#.
  auto lines = dfs.ReadFile("ordering").value();
  EXPECT_EQ(lines->size(), 3u);
}

}  // namespace
}  // namespace fj::join
