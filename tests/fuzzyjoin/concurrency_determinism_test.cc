// Determinism under physical concurrency: the full three-stage pipeline
// must produce byte-identical output whether tasks execute on one host
// thread or several — fault-free AND under a fault plan with retries and
// speculative backups in flight. This is the invariant the TSan CI job
// guards: attempt-scoped state means concurrent attempts share nothing
// but the (preserved) shuffle input and the injector's pure hash.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"

namespace fj::join {
namespace {

std::vector<std::string> SelfInputLines() {
  auto config = data::DblpLikeConfig(300, 17);
  config.payload_bytes = 24;
  return data::RecordsToLines(data::GenerateRecords(config));
}

std::vector<std::string> OuterInputLines() {
  auto config = data::CiteseerxLikeConfig(200, 31);
  config.payload_bytes = 24;
  return data::RecordsToLines(data::GenerateRecords(config));
}

JoinConfig MakeConfig(size_t threads, bool faults) {
  JoinConfig config;
  config.stage1 = Stage1Algorithm::kBTO;
  config.stage2 = Stage2Algorithm::kPK;
  config.stage3 = Stage3Algorithm::kBRJ;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 3;
  config.local_threads = threads;
  config.sort_buffer_bytes = 512;  // spilling + concurrency together
  if (faults) {
    auto plan = std::make_shared<mr::FaultPlan>();
    plan->seed = 5;
    plan->crash_probability = 0.5;
    plan->crash_after_records = 6;
    plan->crash_failing_attempts = 2;
    plan->straggler_probability = 0.3;
    plan->straggler_extra_seconds = 20.0;
    config.fault_plan = std::move(plan);
    config.speculative_execution = true;
  }
  return config;
}

const std::vector<std::string>& Lines(const mr::Dfs& dfs,
                                      const std::string& file) {
  auto lines = dfs.ReadFile(file);
  EXPECT_TRUE(lines.ok());
  return *lines.value();
}

TEST(ConcurrencyDeterminismTest, SelfJoinThreadCountInvariant) {
  for (bool faults : {false, true}) {
    mr::Dfs dfs;
    ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());
    auto serial = RunSelfJoin(&dfs, "records", "serial", MakeConfig(1, faults));
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    auto threaded =
        RunSelfJoin(&dfs, "records", "threaded", MakeConfig(4, faults));
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();

    EXPECT_EQ(Lines(dfs, serial->output_file), Lines(dfs, threaded->output_file))
        << "faults=" << faults;
    EXPECT_EQ(Lines(dfs, serial->ordering_file),
              Lines(dfs, threaded->ordering_file))
        << "faults=" << faults;
    EXPECT_EQ(Lines(dfs, serial->rid_pairs_file),
              Lines(dfs, threaded->rid_pairs_file))
        << "faults=" << faults;
  }
}

TEST(ConcurrencyDeterminismTest, RSJoinThreadCountInvariant) {
  for (bool faults : {false, true}) {
    mr::Dfs dfs;
    ASSERT_TRUE(dfs.WriteFile("r", SelfInputLines()).ok());
    ASSERT_TRUE(dfs.WriteFile("s", OuterInputLines()).ok());
    auto serial = RunRSJoin(&dfs, "r", "s", "serial", MakeConfig(1, faults));
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    auto threaded = RunRSJoin(&dfs, "r", "s", "threaded", MakeConfig(4, faults));
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();

    EXPECT_EQ(Lines(dfs, serial->output_file), Lines(dfs, threaded->output_file))
        << "faults=" << faults;
    EXPECT_EQ(Lines(dfs, serial->rid_pairs_file),
              Lines(dfs, threaded->rid_pairs_file))
        << "faults=" << faults;
  }
}

}  // namespace
}  // namespace fj::join
