// Determinism under physical concurrency: the full three-stage pipeline
// must produce byte-identical output whether tasks execute on one host
// thread or several — fault-free AND under a fault plan with retries and
// speculative backups in flight, with and without a spill budget, with
// and without contract checking. This is the invariant the TSan CI job
// guards: attempt-scoped state means concurrent attempts share nothing
// but the (preserved) shuffle input and the injector's pure hash.
//
// Beyond output bytes, every COMMITTED counter must match: job counters,
// committed byte/record totals, and the committed per-task metrics.
// Wall-derived fields (seconds, speculation launches, executor runtime)
// are the only ones allowed to vary with the thread count.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"

namespace fj::join {
namespace {

std::vector<std::string> SelfInputLines() {
  auto config = data::DblpLikeConfig(300, 17);
  config.payload_bytes = 24;
  return data::RecordsToLines(data::GenerateRecords(config));
}

std::vector<std::string> OuterInputLines() {
  auto config = data::CiteseerxLikeConfig(200, 31);
  config.payload_bytes = 24;
  return data::RecordsToLines(data::GenerateRecords(config));
}

struct Variant {
  bool faults = false;
  bool spill = false;
  bool contracts = false;
  mr::RecordFormat format = mr::RecordFormat::kText;
  mr::BlockCodec codec = mr::BlockCodec::kNone;

  std::string Name() const {
    std::string name;
    name += faults ? "faults" : "clean";
    name += spill ? "+spill" : "";
    name += contracts ? "+contracts" : "";
    if (format == mr::RecordFormat::kBinary) name += "+binary";
    if (codec == mr::BlockCodec::kFjlz) name += "+fjlz";
    return name;
  }
};

JoinConfig MakeConfig(size_t threads, const Variant& variant) {
  JoinConfig config;
  config.stage1 = Stage1Algorithm::kBTO;
  config.stage2 = Stage2Algorithm::kPK;
  config.stage3 = Stage3Algorithm::kBRJ;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 3;
  config.local_threads = threads;
  config.sort_buffer_bytes = variant.spill ? 512 : 0;
  config.check_contracts = variant.contracts;
  config.record_format = variant.format;
  config.block_codec = variant.codec;
  if (variant.faults) {
    auto plan = std::make_shared<mr::FaultPlan>();
    plan->seed = 5;
    plan->crash_probability = 0.5;
    plan->crash_after_records = 6;
    plan->crash_failing_attempts = 2;
    plan->straggler_probability = 0.3;
    plan->straggler_extra_seconds = 20.0;
    config.fault_plan = std::move(plan);
    config.speculative_execution = true;
  }
  return config;
}

const std::vector<std::string>& Lines(const mr::Dfs& dfs,
                                      const std::string& file) {
  auto lines = dfs.ReadFile(file);
  EXPECT_TRUE(lines.ok());
  return *lines.value();
}

// Every committed (thread-count-invariant) number of one pipeline run,
// flattened to text so a mismatch pinpoints the offending field. Wall
// times, speculation launches, and executor runtime stats are excluded
// by design — they measure the host, not the data.
std::string CommittedSignature(const JoinRunResult& result) {
  std::ostringstream out;
  for (const auto& stage : result.stages) {
    out << "stage " << stage.stage_name << "\n";
    for (const auto& job : stage.jobs) {
      out << " job " << job.job_name << " shuffle_bytes=" << job.shuffle_bytes
          << " map_output_bytes=" << job.map_output_bytes
          << " map_output_records=" << job.map_output_records
          << " shuffle_records=" << job.shuffle_records
          << " input_bytes=" << job.input_bytes
          << " spill_count=" << job.spill_count
          << " spilled_bytes=" << job.spilled_bytes
          << " merge_passes=" << job.merge_passes
          << " failed_attempts=" << job.failed_attempts
          << " corruption_detected=" << job.corruption_detected
          << " contract_checks=" << job.contract_checks
          << " records_skipped=" << job.records_skipped
          << " codec_logical_bytes=" << job.codec_logical_bytes
          << " codec_encoded_bytes=" << job.codec_encoded_bytes << "\n";
      for (const auto* tasks : {&job.map_tasks, &job.reduce_tasks}) {
        for (const auto& task : *tasks) {
          out << "  task input_records=" << task.input_records
              << " input_bytes=" << task.input_bytes
              << " output_records=" << task.output_records
              << " output_bytes=" << task.output_bytes
              << " shuffle_records=" << task.shuffle_records
              << " shuffle_bytes=" << task.shuffle_bytes
              << " spill_count=" << task.spill_count
              << " spilled_bytes=" << task.spilled_bytes
              << " peak_buffer_bytes=" << task.peak_buffer_bytes
              << " merge_passes=" << task.merge_passes
              << " failed_attempts=" << task.failed_attempts
              << " corruption_detected=" << task.corruption_detected
              << " contract_checks=" << task.contract_checks << "\n";
        }
      }
      for (const auto& [name, value] : job.counters.Snapshot()) {
        out << "  counter " << name << "=" << value << "\n";
      }
    }
  }
  return out.str();
}

TEST(ConcurrencyDeterminismTest, SelfJoinThreadCountInvariant) {
  const Variant variants[] = {
      {false, false, false},
      {true, false, false},
      {false, true, false},
      {false, false, true},
      {true, true, true},
      {false, false, false, mr::RecordFormat::kBinary},
      {false, true, false, mr::RecordFormat::kBinary, mr::BlockCodec::kFjlz},
      {true, true, true, mr::RecordFormat::kBinary, mr::BlockCodec::kFjlz},
  };
  for (const Variant& variant : variants) {
    mr::Dfs dfs;
    ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());
    auto serial =
        RunSelfJoin(&dfs, "records", "serial", MakeConfig(1, variant));
    ASSERT_TRUE(serial.ok())
        << variant.Name() << ": " << serial.status().ToString();
    const std::string serial_signature = CommittedSignature(*serial);

    for (size_t threads : {2, 8}) {
      const std::string prefix = "threaded" + std::to_string(threads);
      auto threaded =
          RunSelfJoin(&dfs, "records", prefix, MakeConfig(threads, variant));
      ASSERT_TRUE(threaded.ok())
          << variant.Name() << ": " << threaded.status().ToString();

      EXPECT_EQ(Lines(dfs, serial->output_file),
                Lines(dfs, threaded->output_file))
          << variant.Name() << " threads=" << threads;
      EXPECT_EQ(Lines(dfs, serial->ordering_file),
                Lines(dfs, threaded->ordering_file))
          << variant.Name() << " threads=" << threads;
      EXPECT_EQ(Lines(dfs, serial->rid_pairs_file),
                Lines(dfs, threaded->rid_pairs_file))
          << variant.Name() << " threads=" << threads;
      EXPECT_EQ(serial_signature, CommittedSignature(*threaded))
          << variant.Name() << " threads=" << threads;
    }
  }
}

TEST(ConcurrencyDeterminismTest, RSJoinThreadCountInvariant) {
  const Variant variants[] = {
      {false, false, false},
      {true, true, false},
      {true, true, false, mr::RecordFormat::kBinary, mr::BlockCodec::kFjlz},
  };
  for (const Variant& variant : variants) {
    mr::Dfs dfs;
    ASSERT_TRUE(dfs.WriteFile("r", SelfInputLines()).ok());
    ASSERT_TRUE(dfs.WriteFile("s", OuterInputLines()).ok());
    auto serial = RunRSJoin(&dfs, "r", "s", "serial", MakeConfig(1, variant));
    ASSERT_TRUE(serial.ok())
        << variant.Name() << ": " << serial.status().ToString();
    const std::string serial_signature = CommittedSignature(*serial);

    for (size_t threads : {2, 8}) {
      const std::string prefix = "threaded" + std::to_string(threads);
      auto threaded =
          RunRSJoin(&dfs, "r", "s", prefix, MakeConfig(threads, variant));
      ASSERT_TRUE(threaded.ok())
          << variant.Name() << ": " << threaded.status().ToString();

      EXPECT_EQ(Lines(dfs, serial->output_file),
                Lines(dfs, threaded->output_file))
          << variant.Name() << " threads=" << threads;
      EXPECT_EQ(Lines(dfs, serial->rid_pairs_file),
                Lines(dfs, threaded->rid_pairs_file))
          << variant.Name() << " threads=" << threads;
      EXPECT_EQ(serial_signature, CommittedSignature(*threaded))
          << variant.Name() << " threads=" << threads;
    }
  }
}

// The record format changes HOW intermediates are represented, never WHAT
// the join produces: the final .joined output must be byte-identical
// across every format x codec combination, threaded or not, faulted or
// not. (Intermediate files legitimately differ — binary wire records vs.
// text lines — so only the output file is compared across formats.)
TEST(ConcurrencyDeterminismTest, OutputInvariantAcrossFormatsAndCodecs) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());
  const Variant baseline{false, false, false};
  auto text = RunSelfJoin(&dfs, "records", "text", MakeConfig(1, baseline));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  const std::vector<std::string> expected = Lines(dfs, text->output_file);
  ASSERT_FALSE(expected.empty());

  const Variant variants[] = {
      {false, false, false, mr::RecordFormat::kBinary},
      {false, false, false, mr::RecordFormat::kBinary, mr::BlockCodec::kFjlz},
      {true, true, false, mr::RecordFormat::kBinary, mr::BlockCodec::kFjlz},
  };
  size_t run = 0;
  for (const Variant& variant : variants) {
    for (size_t threads : {1, 4}) {
      const std::string prefix = "fmt" + std::to_string(run++);
      auto result = RunSelfJoin(&dfs, "records", prefix,
                                MakeConfig(threads, variant));
      ASSERT_TRUE(result.ok())
          << variant.Name() << ": " << result.status().ToString();
      EXPECT_EQ(expected, Lines(dfs, result->output_file))
          << variant.Name() << " threads=" << threads;
    }
  }
}

// `--local_threads 0` (auto-detect) must behave exactly like any explicit
// thread count: same bytes, same committed counters.
TEST(ConcurrencyDeterminismTest, AutoThreadCountMatchesSerial) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());
  const Variant variant{true, true, false};
  auto serial = RunSelfJoin(&dfs, "records", "serial", MakeConfig(1, variant));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto auto_run = RunSelfJoin(&dfs, "records", "auto", MakeConfig(0, variant));
  ASSERT_TRUE(auto_run.ok()) << auto_run.status().ToString();
  EXPECT_EQ(Lines(dfs, serial->output_file), Lines(dfs, auto_run->output_file));
  EXPECT_EQ(CommittedSignature(*serial), CommittedSignature(*auto_run));
}

}  // namespace
}  // namespace fj::join
