// The one-stage full-record alternative (Section 2.2) must produce exactly
// the same joined pairs as the three-stage pipeline — the paper dropped it
// for performance, not correctness — while shuffling far more bytes.
#include "fuzzyjoin/one_stage.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"

namespace fj::join {
namespace {

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

PairSet CollectPairs(const mr::Dfs& dfs, const std::string& file) {
  PairSet pairs;
  auto joined = ReadJoinedPairs(dfs, file);
  EXPECT_TRUE(joined.ok()) << joined.status().ToString();
  if (!joined.ok()) return pairs;
  for (const auto& jp : *joined) {
    EXPECT_TRUE(pairs.emplace(jp.first.rid, jp.second.rid).second)
        << "duplicate pair survived dedup";
  }
  return pairs;
}

TEST(OneStageTest, MatchesThreeStagePipeline) {
  auto records = data::GenerateRecords(data::DblpLikeConfig(300, 61));
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());

  JoinConfig config;
  auto three_stage = RunSelfJoin(&dfs, "records", "threestage", config);
  ASSERT_TRUE(three_stage.ok()) << three_stage.status().ToString();
  auto one_stage = RunOneStageSelfJoin(&dfs, "records", "onestage", config);
  ASSERT_TRUE(one_stage.ok()) << one_stage.status().ToString();

  auto expected = CollectPairs(dfs, three_stage->output_file);
  auto got = CollectPairs(dfs, one_stage->output_file);
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(got, expected);
}

TEST(OneStageTest, ShufflesFarMoreBytesThanProjectionKernel) {
  // The paper's reason for rejecting the alternative: whole records
  // (payload included) are replicated through the shuffle.
  auto records = data::GenerateRecords(data::DblpLikeConfig(300, 62));
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());

  JoinConfig config;
  auto three_stage = RunSelfJoin(&dfs, "records", "threestage", config);
  ASSERT_TRUE(three_stage.ok());
  auto one_stage = RunOneStageSelfJoin(&dfs, "records", "onestage", config);
  ASSERT_TRUE(one_stage.ok());

  uint64_t projection_kernel_bytes =
      three_stage->stages[1].jobs[0].shuffle_bytes;
  uint64_t full_record_kernel_bytes =
      one_stage->stages[1].jobs[0].shuffle_bytes;
  EXPECT_GT(full_record_kernel_bytes, 3 * projection_kernel_bytes);
}

TEST(OneStageTest, GroupedRoutingAlsoAgrees) {
  auto records = data::GenerateRecords(data::DblpLikeConfig(250, 63));
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());

  JoinConfig config;
  config.routing = TokenRouting::kGroupedTokens;
  config.num_groups = 11;
  auto three_stage = RunSelfJoin(&dfs, "records", "threestage", config);
  ASSERT_TRUE(three_stage.ok());
  auto one_stage = RunOneStageSelfJoin(&dfs, "records", "onestage", config);
  ASSERT_TRUE(one_stage.ok());
  EXPECT_EQ(CollectPairs(dfs, one_stage->output_file),
            CollectPairs(dfs, three_stage->output_file));
}

}  // namespace
}  // namespace fj::join
