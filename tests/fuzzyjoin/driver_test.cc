// End-to-end driver behaviour: stage naming, intermediate artifacts,
// simulated-time plumbing, and configuration validation propagation.
#include "fuzzyjoin/driver.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"

namespace fj::join {
namespace {

class DriverTest : public testing::Test {
 protected:
  void SetUp() override {
    auto config = data::DblpLikeConfig(200, 3);
    config.payload_bytes = 16;
    records_ = data::GenerateRecords(config);
    ASSERT_TRUE(
        dfs_.WriteFile("records", data::RecordsToLines(records_)).ok());
  }

  mr::Dfs dfs_;
  std::vector<data::Record> records_;
};

TEST_F(DriverTest, StageNamesReflectConfiguredAlgorithms) {
  JoinConfig config;
  config.stage1 = Stage1Algorithm::kOPTO;
  config.stage2 = Stage2Algorithm::kBK;
  config.stage3 = Stage3Algorithm::kBRJ;
  auto result = RunSelfJoin(&dfs_, "records", "out", config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->stages.size(), 3u);
  EXPECT_EQ(result->stages[0].stage_name, "1-OPTO");
  EXPECT_EQ(result->stages[1].stage_name, "2-BK");
  EXPECT_EQ(result->stages[2].stage_name, "3-BRJ");
  EXPECT_EQ(result->stages[0].jobs.size(), 1u);   // OPTO: one phase
  EXPECT_EQ(result->stages[2].jobs.size(), 2u);   // BRJ: two phases
}

TEST_F(DriverTest, BtoHasTwoJobsOprjOne) {
  JoinConfig config;  // BTO / PK / OPRJ defaults
  config.stage3 = Stage3Algorithm::kOPRJ;
  auto result = RunSelfJoin(&dfs_, "records", "out", config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stages[0].jobs.size(), 2u);
  EXPECT_EQ(result->stages[2].jobs.size(), 1u);
}

TEST_F(DriverTest, IntermediateArtifactsAreInspectable) {
  JoinConfig config;
  auto result = RunSelfJoin(&dfs_, "records", "out", config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(dfs_.Exists(result->ordering_file));
  EXPECT_TRUE(dfs_.Exists(result->rid_pairs_file));
  EXPECT_TRUE(dfs_.Exists(result->output_file));
  // The ordering file parses.
  auto ordering =
      text::TokenOrdering::FromLines(*dfs_.ReadFile(result->ordering_file).value());
  EXPECT_TRUE(ordering.ok());
  // Every rid-pair line parses.
  for (const auto& line : *dfs_.ReadFile(result->rid_pairs_file).value()) {
    EXPECT_TRUE(ParseRidPairLine(line).ok()) << line;
  }
}

TEST_F(DriverTest, SimulatedSecondsDecreaseWithClusterSize) {
  JoinConfig config;
  auto result = RunSelfJoin(&dfs_, "records", "out", config);
  ASSERT_TRUE(result.ok());
  mr::ClusterConfig small, large;
  small.nodes = 2;
  large.nodes = 10;
  small.work_scale = large.work_scale = 10000;
  EXPECT_GT(result->SimulatedSeconds(small), result->SimulatedSeconds(large));
  // Per-stage times sum to the total.
  double sum = 0;
  for (size_t i = 0; i < 3; ++i) sum += result->SimulatedStageSeconds(i, large);
  EXPECT_DOUBLE_EQ(sum, result->SimulatedSeconds(large));
  EXPECT_DOUBLE_EQ(result->SimulatedStageSeconds(99, large), 0.0);
  EXPECT_GT(result->TotalWallSeconds(), 0.0);
}

TEST_F(DriverTest, InvalidConfigRejectedBeforeRunning) {
  JoinConfig config;
  config.tau = 1.5;
  auto result = RunSelfJoin(&dfs_, "records", "out", config);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(dfs_.Exists("out.ordering"));
}

TEST_F(DriverTest, MissingInputPropagatesNotFound) {
  JoinConfig config;
  auto result = RunSelfJoin(&dfs_, "absent", "out", config);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(DriverTest, OutputPrefixCollisionSurfacesAsError) {
  JoinConfig config;
  ASSERT_TRUE(RunSelfJoin(&dfs_, "records", "out", config).ok());
  // Same prefix again: the ordering file already exists.
  auto again = RunSelfJoin(&dfs_, "records", "out", config);
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(DriverTest, RSJoinStageOneRunsOnROnly) {
  // Tokens unique to S must not appear in the stage-1 ordering.
  std::vector<data::Record> r{{1, "alpha beta", "mcx", "p"}};
  std::vector<data::Record> s{{1, "alpha zeta", "mcy", "p"}};
  ASSERT_TRUE(dfs_.WriteFile("r", data::RecordsToLines(r)).ok());
  ASSERT_TRUE(dfs_.WriteFile("s", data::RecordsToLines(s)).ok());
  JoinConfig config;
  auto result = RunRSJoin(&dfs_, "r", "s", "rsout", config);
  ASSERT_TRUE(result.ok());
  auto lines = dfs_.ReadFile(result->ordering_file).value();
  for (const auto& line : *lines) {
    EXPECT_EQ(line.find("zeta"), std::string::npos) << line;
    EXPECT_EQ(line.find("mcy"), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace fj::join
