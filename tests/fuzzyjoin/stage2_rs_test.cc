// Stage-2 R-S unit tests pinning the Section 4 / Figure 6 machinery:
// length-class key assignment, the R-before-S arrival order within a
// class, the "discard unknown S tokens from routing but keep them in the
// set" rule, and BK/PK agreement on crafted length distributions.
#include <gtest/gtest.h>

#include <set>

#include "data/record.h"
#include "fuzzyjoin/stage1.h"
#include "fuzzyjoin/stage2.h"
#include "mapreduce/dfs.h"

namespace fj::join {
namespace {

using data::Record;

/// Builds a title of `n` distinct shared words drawn from a base phrase.
std::string TitleOfLength(size_t n, size_t offset = 0) {
  std::string title;
  for (size_t i = 0; i < n; ++i) {
    if (!title.empty()) title += ' ';
    title += 'w';
    title += std::to_string(offset + i);
  }
  return title;
}

std::set<std::pair<uint64_t, uint64_t>> RunRSKernel(
    const std::vector<Record>& r, const std::vector<Record>& s,
    JoinConfig config, fj::CounterSet* counters = nullptr) {
  mr::Dfs dfs;
  EXPECT_TRUE(dfs.WriteFile("r", data::RecordsToLines(r)).ok());
  EXPECT_TRUE(dfs.WriteFile("s", data::RecordsToLines(s)).ok());
  EXPECT_TRUE(RunStage1(&dfs, "r", "ordering", config).ok());
  auto result = RunStage2RSJoin(&dfs, "r", "s", "ordering", "pairs", config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::set<std::pair<uint64_t, uint64_t>> pairs;
  if (!result.ok()) return pairs;
  if (counters != nullptr) counters->MergeFrom(result->jobs[0].counters);
  for (const auto& line : *dfs.ReadFile("pairs").value()) {
    auto parsed = ParseRidPairLine(line);
    EXPECT_TRUE(parsed.ok()) << line;
    auto [rid1, rid2, sim] = parsed.value();
    (void)sim;
    pairs.emplace(rid1, rid2);
  }
  return pairs;
}

TEST(Stage2RSTest, LongerRRecordsJoinShorterSRecords) {
  // The Figure 6 scenario: R records LONGER than their S partners must be
  // indexed before the S record probes (R length class = lower bound of
  // its length). R has 10 tokens, S has 9 of them: jaccard = 9/10 = 0.9.
  std::vector<Record> r{{1, TitleOfLength(10), "", "p"}};
  std::vector<Record> s{{2, TitleOfLength(9), "", "p"}};
  JoinConfig config;
  config.tau = 0.85;
  for (auto alg : {Stage2Algorithm::kPK, Stage2Algorithm::kBK}) {
    config.stage2 = alg;
    auto pairs = RunRSKernel(r, s, config);
    EXPECT_EQ(pairs, (std::set<std::pair<uint64_t, uint64_t>>{{1, 2}}))
        << Stage2Name(alg);
  }
}

TEST(Stage2RSTest, ShorterRRecordsJoinLongerSRecords) {
  std::vector<Record> r{{1, TitleOfLength(9), "", "p"}};
  std::vector<Record> s{{2, TitleOfLength(10), "", "p"}};
  JoinConfig config;
  config.tau = 0.85;
  for (auto alg : {Stage2Algorithm::kPK, Stage2Algorithm::kBK}) {
    config.stage2 = alg;
    auto pairs = RunRSKernel(r, s, config);
    EXPECT_EQ(pairs, (std::set<std::pair<uint64_t, uint64_t>>{{1, 2}}))
        << Stage2Name(alg);
  }
}

TEST(Stage2RSTest, MixedLengthSpreadBkEqualsPk) {
  // Many length classes at once: R and S records of lengths 2..40 with
  // planted matches across class boundaries.
  std::vector<Record> r, s;
  uint64_t rid = 1;
  for (size_t len = 2; len <= 40; len += 3) {
    r.push_back(Record{rid++, TitleOfLength(len), "", "p"});
    // Same-length copy (jaccard 1.0).
    s.push_back(Record{rid++, TitleOfLength(len), "", "p"});
    // One-longer copy (jaccard len/(len+1)).
    s.push_back(Record{rid++, TitleOfLength(len + 1), "", "p"});
  }
  JoinConfig config;
  config.tau = 0.9;
  config.stage2 = Stage2Algorithm::kBK;
  auto bk = RunRSKernel(r, s, config);
  config.stage2 = Stage2Algorithm::kPK;
  auto pk = RunRSKernel(r, s, config);
  EXPECT_EQ(bk, pk);
  EXPECT_FALSE(pk.empty());
  // Every same-length identity pair must be present.
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_TRUE(pk.count({r[i].rid, r[i].rid + 1}))
        << "identity pair missing for length record " << r[i].rid;
  }
}

TEST(Stage2RSTest, UnknownSTokensCountTowardSimilarity) {
  // S record shares all 9 of R's tokens but carries 3 extra tokens that R
  // never produced: jaccard = 9/12 = 0.75. At tau 0.8 the pair must be
  // REJECTED — if unknown tokens were dropped from the set the similarity
  // would wrongly be 1.0.
  std::vector<Record> r{{1, TitleOfLength(9), "", "p"}};
  std::vector<Record> s{
      {2, TitleOfLength(9) + " zonly1 zonly2 zonly3", "", "p"}};
  JoinConfig config;
  config.tau = 0.8;
  EXPECT_TRUE(RunRSKernel(r, s, config).empty());
  // At tau 0.75 it qualifies, with the correct similarity.
  config.tau = 0.75;
  auto pairs = RunRSKernel(r, s, config);
  EXPECT_EQ(pairs, (std::set<std::pair<uint64_t, uint64_t>>{{1, 2}}));
}

TEST(Stage2RSTest, AllUnknownSRecordProducesNothingAndDoesNotCrash) {
  std::vector<Record> r{{1, TitleOfLength(5), "", "p"}};
  std::vector<Record> s{{2, "qq ww ee rr tt", "", "p"}};
  JoinConfig config;
  for (auto alg : {Stage2Algorithm::kPK, Stage2Algorithm::kBK}) {
    config.stage2 = alg;
    EXPECT_TRUE(RunRSKernel(r, s, config).empty());
  }
}

TEST(Stage2RSTest, PkEvictsRRecordsBelowProbeBounds) {
  // A spread of R lengths with S probing only at the top: short R records
  // must be evicted as the length classes advance.
  std::vector<Record> r, s;
  uint64_t rid = 1;
  for (size_t len = 2; len <= 30; ++len) {
    r.push_back(Record{rid++, TitleOfLength(len), "", "p"});
  }
  s.push_back(Record{1000, TitleOfLength(30), "", "p"});
  JoinConfig config;
  config.stage2 = Stage2Algorithm::kPK;
  config.routing = TokenRouting::kGroupedTokens;
  config.num_groups = 1;
  config.num_reduce_tasks = 1;
  fj::CounterSet counters;
  auto pairs = RunRSKernel(r, s, config, &counters);
  EXPECT_TRUE(pairs.count({rid - 1, 1000}));  // the length-30 R record
  EXPECT_GT(counters.Get("stage2.pk.evicted_records"), 0);
}

}  // namespace
}  // namespace fj::join
