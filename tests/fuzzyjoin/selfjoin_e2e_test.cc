// End-to-end self-join validation: every algorithm combination the paper
// evaluates (BTO/OPTO x BK/PK x BRJ/OPRJ, individual/grouped routing) must
// produce exactly the ground-truth result of a naive O(n^2) join — same
// pairs, same similarities, with complete records attached.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"
#include "ppjoin/naive.h"
#include "text/token_ordering.h"
#include "text/tokenizer.h"

namespace fj::join {
namespace {

using data::GenerateRecords;
using data::Record;
using ppjoin::NaiveSelfJoin;
using ppjoin::SimilarPair;
using ppjoin::TokenSetRecord;

/// Ground truth: tokenize exactly as the pipeline does and run the naive
/// joiner.
std::vector<SimilarPair> GroundTruth(const std::vector<Record>& records,
                                     const sim::SimilaritySpec& spec) {
  text::WordTokenizer tokenizer;
  std::map<std::string, uint64_t> counts;
  std::vector<std::vector<std::string>> tokenized;
  tokenized.reserve(records.size());
  for (const auto& r : records) {
    tokenized.push_back(tokenizer.Tokenize(r.JoinAttribute()));
    for (const auto& t : tokenized.back()) counts[t]++;
  }
  auto ordering = text::TokenOrdering::FromCounts(
      {counts.begin(), counts.end()});
  std::vector<TokenSetRecord> sets;
  sets.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    sets.push_back(
        TokenSetRecord{records[i].rid, ordering.ToSortedIds(tokenized[i])});
  }
  return NaiveSelfJoin(sets, spec);
}

std::vector<Record> TestRecords(size_t n, uint64_t seed) {
  auto config = data::DblpLikeConfig(n, seed);
  config.payload_bytes = 24;  // keep the test light
  return GenerateRecords(config);
}

struct ComboParam {
  Stage1Algorithm stage1;
  Stage2Algorithm stage2;
  Stage3Algorithm stage3;
  TokenRouting routing;
};

std::string ComboName(const testing::TestParamInfo<ComboParam>& info) {
  const ComboParam& p = info.param;
  std::string name = std::string(Stage1Name(p.stage1)) + "_" +
                     Stage2Name(p.stage2) + "_" + Stage3Name(p.stage3);
  name += p.routing == TokenRouting::kIndividualTokens ? "_individual"
                                                       : "_grouped";
  return name;
}

class SelfJoinComboTest : public testing::TestWithParam<ComboParam> {};

TEST_P(SelfJoinComboTest, MatchesNaiveGroundTruth) {
  const ComboParam& p = GetParam();
  std::vector<Record> records = TestRecords(300, 7);

  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());

  JoinConfig config;
  config.stage1 = p.stage1;
  config.stage2 = p.stage2;
  config.stage3 = p.stage3;
  config.routing = p.routing;
  config.num_groups = 13;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 3;

  auto result = RunSelfJoin(&dfs, "records", "out", config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto joined = ReadJoinedPairs(dfs, result->output_file);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();

  auto expected = GroundTruth(records, config.MakeSpec());

  // Same pair set, canonical order, no duplicates.
  std::set<std::pair<uint64_t, uint64_t>> got;
  std::map<uint64_t, Record> by_rid;
  for (const auto& r : records) by_rid[r.rid] = r;
  for (const auto& jp : *joined) {
    EXPECT_LT(jp.first.rid, jp.second.rid);
    auto inserted = got.emplace(jp.first.rid, jp.second.rid);
    EXPECT_TRUE(inserted.second)
        << "duplicate pair " << jp.first.rid << "," << jp.second.rid;
    // Records are completely reconstructed.
    EXPECT_EQ(jp.first, by_rid[jp.first.rid]);
    EXPECT_EQ(jp.second, by_rid[jp.second.rid]);
  }
  std::set<std::pair<uint64_t, uint64_t>> want;
  std::map<std::pair<uint64_t, uint64_t>, double> want_sim;
  for (const auto& pair : expected) {
    want.emplace(pair.rid1, pair.rid2);
    want_sim[{pair.rid1, pair.rid2}] = pair.similarity;
  }
  EXPECT_EQ(got, want);

  // Similarities agree.
  for (const auto& jp : *joined) {
    auto it = want_sim.find({jp.first.rid, jp.second.rid});
    if (it != want_sim.end()) {
      EXPECT_NEAR(jp.similarity, it->second, 1e-5);
    }
  }
  EXPECT_FALSE(expected.empty()) << "test data produced no similar pairs; "
                                    "the test would be vacuous";
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SelfJoinComboTest,
    testing::Values(
        ComboParam{Stage1Algorithm::kBTO, Stage2Algorithm::kBK,
                   Stage3Algorithm::kBRJ, TokenRouting::kIndividualTokens},
        ComboParam{Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                   Stage3Algorithm::kBRJ, TokenRouting::kIndividualTokens},
        ComboParam{Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                   Stage3Algorithm::kOPRJ, TokenRouting::kIndividualTokens},
        ComboParam{Stage1Algorithm::kOPTO, Stage2Algorithm::kBK,
                   Stage3Algorithm::kOPRJ, TokenRouting::kIndividualTokens},
        ComboParam{Stage1Algorithm::kOPTO, Stage2Algorithm::kPK,
                   Stage3Algorithm::kBRJ, TokenRouting::kIndividualTokens},
        ComboParam{Stage1Algorithm::kBTO, Stage2Algorithm::kBK,
                   Stage3Algorithm::kBRJ, TokenRouting::kGroupedTokens},
        ComboParam{Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                   Stage3Algorithm::kOPRJ, TokenRouting::kGroupedTokens},
        ComboParam{Stage1Algorithm::kOPTO, Stage2Algorithm::kPK,
                   Stage3Algorithm::kOPRJ, TokenRouting::kGroupedTokens}),
    ComboName);

TEST(SelfJoinTest, DifferentSimilarityFunctionsMatchGroundTruth) {
  std::vector<Record> records = TestRecords(200, 11);
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());

  for (auto fn : {sim::SimilarityFunction::kJaccard,
                  sim::SimilarityFunction::kCosine,
                  sim::SimilarityFunction::kDice}) {
    JoinConfig config;
    config.function = fn;
    config.tau = 0.85;
    std::string prefix = std::string("out-") + sim::SimilarityFunctionName(fn);
    auto result = RunSelfJoin(&dfs, "records", prefix, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto joined = ReadJoinedPairs(dfs, result->output_file);
    ASSERT_TRUE(joined.ok());

    auto expected = GroundTruth(records, config.MakeSpec());
    std::set<std::pair<uint64_t, uint64_t>> got, want;
    for (const auto& jp : *joined) got.emplace(jp.first.rid, jp.second.rid);
    for (const auto& pair : expected) want.emplace(pair.rid1, pair.rid2);
    EXPECT_EQ(got, want) << sim::SimilarityFunctionName(fn);
  }
}

TEST(SelfJoinTest, OprjMemoryLimitTriggersResourceExhausted) {
  std::vector<Record> records = TestRecords(300, 7);
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());

  JoinConfig config;
  config.stage3 = Stage3Algorithm::kOPRJ;
  config.oprj_memory_limit_bytes = 16;  // absurdly small
  auto result = RunSelfJoin(&dfs, "records", "out", config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(SelfJoinTest, EmptyInputYieldsEmptyOutput) {
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records",
                            {data::Record{1, "only one", "author", "p"}
                                 .ToLine()})
                  .ok());
  JoinConfig config;
  auto result = RunSelfJoin(&dfs, "records", "out", config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto joined = ReadJoinedPairs(dfs, result->output_file);
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined->empty());
}

}  // namespace
}  // namespace fj::join
