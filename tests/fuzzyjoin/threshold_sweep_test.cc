// Property sweep: the full pipeline must equal the naive ground truth for
// every similarity threshold, not just the paper's 0.80 — lower thresholds
// stress longer prefixes, bigger candidate sets, and wider length bounds;
// higher thresholds stress the boundary arithmetic (ceil/floor robustness).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"
#include "ppjoin/naive.h"
#include "text/token_ordering.h"
#include "text/tokenizer.h"

namespace fj::join {
namespace {

using data::Record;

std::set<std::pair<uint64_t, uint64_t>> NaivePairs(
    const std::vector<Record>& records, const sim::SimilaritySpec& spec) {
  text::WordTokenizer tokenizer;
  std::map<std::string, uint64_t> counts;
  std::vector<std::vector<std::string>> tokenized;
  for (const auto& r : records) {
    tokenized.push_back(tokenizer.Tokenize(r.JoinAttribute()));
    for (const auto& t : tokenized.back()) counts[t]++;
  }
  auto ordering =
      text::TokenOrdering::FromCounts({counts.begin(), counts.end()});
  std::vector<ppjoin::TokenSetRecord> sets;
  for (size_t i = 0; i < records.size(); ++i) {
    sets.push_back(ppjoin::TokenSetRecord{
        records[i].rid, ordering.ToSortedIds(tokenized[i])});
  }
  std::set<std::pair<uint64_t, uint64_t>> out;
  for (const auto& pair : ppjoin::NaiveSelfJoin(sets, spec)) {
    out.emplace(pair.rid1, pair.rid2);
  }
  return out;
}

class ThresholdSweepTest : public testing::TestWithParam<double> {};

TEST_P(ThresholdSweepTest, PipelineMatchesNaiveAtEveryTau) {
  double tau = GetParam();
  auto gen_config = data::DblpLikeConfig(220, 91);
  gen_config.payload_bytes = 8;
  auto records = data::GenerateRecords(gen_config);

  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());

  for (auto stage2 : {Stage2Algorithm::kBK, Stage2Algorithm::kPK}) {
    JoinConfig config;
    config.tau = tau;
    config.stage2 = stage2;
    std::string prefix =
        "out-" + std::string(Stage2Name(stage2)) + std::to_string(tau * 100);
    auto result = RunSelfJoin(&dfs, "records", prefix, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto joined = ReadJoinedPairs(dfs, result->output_file);
    ASSERT_TRUE(joined.ok());
    std::set<std::pair<uint64_t, uint64_t>> got;
    for (const auto& jp : *joined) got.emplace(jp.first.rid, jp.second.rid);
    EXPECT_EQ(got, NaivePairs(records, config.MakeSpec()))
        << Stage2Name(stage2) << " tau=" << tau;
  }
}

INSTANTIATE_TEST_SUITE_P(Taus, ThresholdSweepTest,
                         testing::Values(0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 0.95,
                                         1.0),
                         [](const testing::TestParamInfo<double>& info) {
                           return "tau" +
                                  std::to_string(
                                      static_cast<int>(info.param * 100));
                         });

TEST(TokenizerPolicyTest, NumberedDuplicatesFlowThroughThePipeline) {
  // Records whose titles contain repeated words: with the kNumber policy
  // repetitions count, so "ba ba zu" and "ba zu" differ more than under
  // kRemove. Validate against naive ground truth built with the SAME
  // tokenizer.
  std::vector<Record> records;
  for (uint64_t i = 1; i <= 60; ++i) {
    std::string title = (i % 3 == 0) ? "ba ba zula kemo"
                        : (i % 3 == 1) ? "ba zula kemo"
                                       : "ba ba zula kemo rin" +
                                             std::to_string(i);
    records.push_back(Record{i, title, "mcfoo", "p"});
  }
  auto tokenizer =
      std::make_shared<text::WordTokenizer>(text::DuplicatePolicy::kNumber);

  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", data::RecordsToLines(records)).ok());
  JoinConfig config;
  config.tokenizer = tokenizer;
  config.tau = 0.7;
  auto result = RunSelfJoin(&dfs, "records", "out", config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto joined = ReadJoinedPairs(dfs, result->output_file);
  ASSERT_TRUE(joined.ok());

  // Ground truth with the numbering tokenizer.
  std::map<std::string, uint64_t> counts;
  std::vector<std::vector<std::string>> tokenized;
  for (const auto& r : records) {
    tokenized.push_back(tokenizer->Tokenize(r.JoinAttribute()));
    for (const auto& t : tokenized.back()) counts[t]++;
  }
  auto ordering =
      text::TokenOrdering::FromCounts({counts.begin(), counts.end()});
  std::vector<ppjoin::TokenSetRecord> sets;
  for (size_t i = 0; i < records.size(); ++i) {
    sets.push_back(ppjoin::TokenSetRecord{
        records[i].rid, ordering.ToSortedIds(tokenized[i])});
  }
  std::set<std::pair<uint64_t, uint64_t>> want, got;
  for (const auto& pair :
       ppjoin::NaiveSelfJoin(sets, config.MakeSpec())) {
    want.emplace(pair.rid1, pair.rid2);
  }
  for (const auto& jp : *joined) got.emplace(jp.first.rid, jp.second.rid);
  EXPECT_EQ(got, want);
  EXPECT_FALSE(want.empty());
}

}  // namespace
}  // namespace fj::join
