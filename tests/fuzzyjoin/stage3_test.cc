// Stage-3 (record join) unit tests: BRJ and OPRJ must agree, duplicates
// from stage 2 must collapse, missing records must be counted not crash,
// and the joined lines must round-trip complete records.
#include "fuzzyjoin/stage3.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/record.h"
#include "fuzzyjoin/stage2.h"
#include "mapreduce/dfs.h"

namespace fj::join {
namespace {

using data::Record;

std::vector<Record> SmallRecords() {
  return {
      {1, "alpha beta", "mcone", "payload-1"},
      {2, "alpha beta", "mcone", "payload-2"},
      {3, "gamma delta", "mctwo", "payload-3"},
      {4, "gamma delta epsilon", "mctwo", "payload-4"},
  };
}

std::vector<std::string> PairLines() {
  return {
      FormatRidPairLine(1, 2, 1.0),
      FormatRidPairLine(3, 4, 0.8),
      FormatRidPairLine(1, 2, 1.0),  // duplicate from another reducer
  };
}

std::multiset<std::pair<uint64_t, uint64_t>> JoinWith(Stage3Algorithm alg) {
  mr::Dfs dfs;
  EXPECT_TRUE(
      dfs.WriteFile("records", data::RecordsToLines(SmallRecords())).ok());
  EXPECT_TRUE(dfs.WriteFile("pairs", PairLines()).ok());
  JoinConfig config;
  config.stage3 = alg;
  auto result = RunStage3SelfJoin(&dfs, "records", "pairs", "out", config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::multiset<std::pair<uint64_t, uint64_t>> pairs;
  if (!result.ok()) return pairs;
  auto joined = ReadJoinedPairs(dfs, "out");
  EXPECT_TRUE(joined.ok());
  for (const auto& jp : *joined) {
    pairs.emplace(jp.first.rid, jp.second.rid);
    // Full records reconstructed, including payloads stage 2 never saw.
    EXPECT_EQ(jp.first.payload,
              "payload-" + std::to_string(jp.first.rid));
    EXPECT_EQ(jp.second.payload,
              "payload-" + std::to_string(jp.second.rid));
  }
  return pairs;
}

TEST(Stage3Test, BrjJoinsAndDeduplicates) {
  auto pairs = JoinWith(Stage3Algorithm::kBRJ);
  EXPECT_EQ(pairs, (std::multiset<std::pair<uint64_t, uint64_t>>{{1, 2},
                                                                 {3, 4}}));
}

TEST(Stage3Test, OprjJoinsAndDeduplicates) {
  auto pairs = JoinWith(Stage3Algorithm::kOPRJ);
  EXPECT_EQ(pairs, (std::multiset<std::pair<uint64_t, uint64_t>>{{1, 2},
                                                                 {3, 4}}));
}

TEST(Stage3Test, SimilarityTravelsThrough) {
  mr::Dfs dfs;
  ASSERT_TRUE(
      dfs.WriteFile("records", data::RecordsToLines(SmallRecords())).ok());
  ASSERT_TRUE(dfs.WriteFile("pairs", {FormatRidPairLine(3, 4, 0.8)}).ok());
  JoinConfig config;
  config.stage3 = Stage3Algorithm::kBRJ;
  ASSERT_TRUE(RunStage3SelfJoin(&dfs, "records", "pairs", "out", config).ok());
  auto joined = ReadJoinedPairs(dfs, "out");
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->size(), 1u);
  EXPECT_NEAR((*joined)[0].similarity, 0.8, 1e-9);
}

TEST(Stage3Test, MissingRecordCountedNotFatal) {
  mr::Dfs dfs;
  ASSERT_TRUE(
      dfs.WriteFile("records", data::RecordsToLines(SmallRecords())).ok());
  ASSERT_TRUE(dfs.WriteFile("pairs",
                            {FormatRidPairLine(1, 2, 1.0),
                             FormatRidPairLine(7, 9, 0.9)})  // no rid 7/9
                  .ok());
  JoinConfig config;
  config.stage3 = Stage3Algorithm::kBRJ;
  auto result = RunStage3SelfJoin(&dfs, "records", "pairs", "out", config);
  ASSERT_TRUE(result.ok());
  auto joined = ReadJoinedPairs(dfs, "out");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), 1u);
  EXPECT_EQ(result->jobs[0].counters.Get("stage3.missing_records"), 2);
}

TEST(Stage3Test, EmptyPairListProducesEmptyOutput) {
  for (auto alg : {Stage3Algorithm::kBRJ, Stage3Algorithm::kOPRJ}) {
    mr::Dfs dfs;
    ASSERT_TRUE(
        dfs.WriteFile("records", data::RecordsToLines(SmallRecords())).ok());
    ASSERT_TRUE(dfs.WriteFile("pairs", {}).ok());
    JoinConfig config;
    config.stage3 = alg;
    auto result = RunStage3SelfJoin(&dfs, "records", "pairs", "out", config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(ReadJoinedPairs(dfs, "out")->empty());
  }
}

TEST(Stage3Test, RSJoinOverlappingRidSpaces) {
  // R and S both contain rid 1; pair (1, 1) must join R's record with S's.
  std::vector<Record> r{{1, "r title", "mcr", "r-payload"}};
  std::vector<Record> s{{1, "s title", "mcs", "s-payload"}};
  for (auto alg : {Stage3Algorithm::kBRJ, Stage3Algorithm::kOPRJ}) {
    mr::Dfs dfs;
    ASSERT_TRUE(dfs.WriteFile("r", data::RecordsToLines(r)).ok());
    ASSERT_TRUE(dfs.WriteFile("s", data::RecordsToLines(s)).ok());
    ASSERT_TRUE(dfs.WriteFile("pairs", {FormatRidPairLine(1, 1, 0.9)}).ok());
    JoinConfig config;
    config.stage3 = alg;
    auto result = RunStage3RSJoin(&dfs, "r", "s", "pairs", "out", config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto joined = ReadJoinedPairs(dfs, "out");
    ASSERT_TRUE(joined.ok());
    ASSERT_EQ(joined->size(), 1u) << Stage3Name(alg);
    EXPECT_EQ((*joined)[0].first.payload, "r-payload");
    EXPECT_EQ((*joined)[0].second.payload, "s-payload");
  }
}

TEST(Stage3Test, OprjMemoryBudgetEnforced) {
  mr::Dfs dfs;
  ASSERT_TRUE(
      dfs.WriteFile("records", data::RecordsToLines(SmallRecords())).ok());
  ASSERT_TRUE(dfs.WriteFile("pairs", PairLines()).ok());
  JoinConfig config;
  config.stage3 = Stage3Algorithm::kOPRJ;
  config.oprj_memory_limit_bytes = 10;
  auto result = RunStage3SelfJoin(&dfs, "records", "pairs", "out", config);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // A generous budget passes.
  config.oprj_memory_limit_bytes = 1 << 20;
  EXPECT_TRUE(
      RunStage3SelfJoin(&dfs, "records", "pairs", "out2", config).ok());
}

TEST(JoinedPairTest, LineRoundTrip) {
  JoinedPair jp;
  jp.similarity = 0.875;
  jp.first = Record{5, "t one", "a one", "p one"};
  jp.second = Record{9, "t two", "a two", "p two"};
  auto parsed = JoinedPair::FromLine(jp.ToLine());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->first, jp.first);
  EXPECT_EQ(parsed->second, jp.second);
  EXPECT_NEAR(parsed->similarity, 0.875, 1e-9);
}

TEST(JoinedPairTest, PayloadTabsSanitized) {
  JoinedPair jp;
  jp.first = Record{1, "t", "a", "tab\there"};
  jp.second = Record{2, "t", "a", "p"};
  auto parsed = JoinedPair::FromLine(jp.ToLine());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->first.payload, "tab here");
}

TEST(JoinedPairTest, RejectsMalformedLines) {
  EXPECT_FALSE(JoinedPair::FromLine("").ok());
  EXPECT_FALSE(JoinedPair::FromLine("1\t2\t0.5").ok());
}

}  // namespace
}  // namespace fj::join
