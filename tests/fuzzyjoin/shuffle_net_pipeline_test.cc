// The PR 9 acceptance sweep: every paper variant (BTO/OPTO x BK/PK x
// BRJ/OPRJ), self-join and R-S join, run over the socket transport with 2
// and 4 shuffle workers, clean and under deterministic network fault
// plans (drop, bit-flip, stall) — and every run's output files must be
// byte-identical to the single-threaded in-process baseline. Corrupt
// plans must additionally show a non-zero wire-corruption-detected
// counter: the chaos has to actually bite for the byte identity to mean
// anything.
//
// The driver path is the real one (RunSelfJoin/RunRSJoin resolve the
// worker pool + transport from JoinConfig), so this also covers pool
// lifetime across the pipeline's stages and DropJob cleanup per job.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"

namespace fj::join {
namespace {

std::vector<std::string> SelfInputLines() {
  auto config = data::DblpLikeConfig(220, 23);
  config.payload_bytes = 16;
  return data::RecordsToLines(data::GenerateRecords(config));
}

std::vector<std::string> OuterInputLines() {
  auto config = data::CiteseerxLikeConfig(160, 29);
  config.payload_bytes = 16;
  return data::RecordsToLines(data::GenerateRecords(config));
}

struct AlgoVariant {
  Stage1Algorithm stage1;
  Stage2Algorithm stage2;
  Stage3Algorithm stage3;
  std::string Name() const {
    return std::string(Stage1Name(stage1)) + "-" + Stage2Name(stage2) + "-" +
           Stage3Name(stage3);
  }
};

std::vector<AlgoVariant> AllVariants() {
  std::vector<AlgoVariant> variants;
  for (auto s1 : {Stage1Algorithm::kBTO, Stage1Algorithm::kOPTO}) {
    for (auto s2 : {Stage2Algorithm::kBK, Stage2Algorithm::kPK}) {
      for (auto s3 : {Stage3Algorithm::kBRJ, Stage3Algorithm::kOPRJ}) {
        variants.push_back({s1, s2, s3});
      }
    }
  }
  return variants;
}

struct NetVariant {
  const char* name;
  size_t workers;
  std::shared_ptr<const mr::NetFaultPlan> plan;
  bool expect_corruption_detected = false;
};

std::vector<NetVariant> NetVariants() {
  auto drop = std::make_shared<mr::NetFaultPlan>();
  drop->seed = 7;
  drop->drop_probability = 0.3;
  drop->refuse_connect_probability = 0.1;
  drop->fault_attempts = 2;
  auto corrupt = std::make_shared<mr::NetFaultPlan>();
  corrupt->seed = 8;
  corrupt->corrupt_probability = 0.6;
  corrupt->truncate_probability = 0.1;
  corrupt->fault_attempts = 2;
  auto stall = std::make_shared<mr::NetFaultPlan>();
  stall->seed = 9;
  stall->stall_probability = 0.2;
  stall->stall_ms = 600;  // beyond the client's I/O deadline
  stall->delay_probability = 0.3;
  stall->delay_ms = 5;
  stall->fault_attempts = 2;
  return {
      {"clean-2w", 2, nullptr},
      {"clean-4w", 4, nullptr},
      {"drop-2w", 2, std::move(drop)},
      {"corrupt-4w", 4, std::move(corrupt), true},
      {"stall-2w", 2, std::move(stall)},
  };
}

JoinConfig BaseConfig(const AlgoVariant& algo) {
  JoinConfig config;
  config.stage1 = algo.stage1;
  config.stage2 = algo.stage2;
  config.stage3 = algo.stage3;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 3;
  config.local_threads = 1;
  return config;
}

JoinConfig SocketConfig(const AlgoVariant& algo, const NetVariant& net) {
  JoinConfig config = BaseConfig(algo);
  config.local_threads = 4;
  config.transport = mr::TransportKind::kSocket;
  config.num_shuffle_workers = net.workers;
  config.net_fault_plan = net.plan;
  return config;
}

const std::vector<std::string>& Lines(const mr::Dfs& dfs,
                                      const std::string& file) {
  auto lines = dfs.ReadFile(file);
  EXPECT_TRUE(lines.ok());
  return *lines.value();
}

struct NetTotals {
  uint64_t fetches = 0;
  uint64_t corruption = 0;
  uint64_t reruns = 0;
};

NetTotals TotalNetActivity(const JoinRunResult& result) {
  NetTotals totals;
  for (const auto& stage : result.stages) {
    for (const auto& job : stage.jobs) {
      totals.fetches += job.net_fetches;
      totals.corruption += job.net_corruption_detected;
      totals.reruns += job.net_map_reruns;
    }
  }
  return totals;
}

TEST(ShuffleNetPipelineTest, SelfJoinByteIdenticalAcrossTransportsAndFaults) {
  const auto nets = NetVariants();
  for (const AlgoVariant& algo : AllVariants()) {
    mr::Dfs dfs;
    ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());
    auto baseline =
        RunSelfJoin(&dfs, "records", "base", BaseConfig(algo));
    ASSERT_TRUE(baseline.ok())
        << algo.Name() << ": " << baseline.status().ToString();

    for (const NetVariant& net : nets) {
      const std::string prefix = std::string("net-") + net.name;
      auto socketed = RunSelfJoin(&dfs, "records", prefix,
                                  SocketConfig(algo, net));
      ASSERT_TRUE(socketed.ok())
          << algo.Name() << "/" << net.name << ": "
          << socketed.status().ToString();
      EXPECT_EQ(Lines(dfs, baseline->output_file),
                Lines(dfs, socketed->output_file))
          << algo.Name() << "/" << net.name;
      EXPECT_EQ(Lines(dfs, baseline->ordering_file),
                Lines(dfs, socketed->ordering_file))
          << algo.Name() << "/" << net.name;
      EXPECT_EQ(Lines(dfs, baseline->rid_pairs_file),
                Lines(dfs, socketed->rid_pairs_file))
          << algo.Name() << "/" << net.name;
      const NetTotals totals = TotalNetActivity(*socketed);
      EXPECT_GT(totals.fetches, 0u) << algo.Name() << "/" << net.name;
      if (net.expect_corruption_detected) {
        EXPECT_GT(totals.corruption, 0u)
            << algo.Name() << "/" << net.name
            << ": the corrupt plan never bit — nothing was verified";
      }
    }
  }
}

TEST(ShuffleNetPipelineTest, RSJoinByteIdenticalAcrossTransportsAndFaults) {
  // The R-S pipeline shares the stage machinery; one algorithm variant
  // per stage family keeps the sweep affordable while still covering the
  // R-S-specific jobs (tagged stage 2, two-relation stage 3).
  const AlgoVariant algos[] = {
      {Stage1Algorithm::kBTO, Stage2Algorithm::kPK, Stage3Algorithm::kBRJ},
      {Stage1Algorithm::kOPTO, Stage2Algorithm::kBK, Stage3Algorithm::kOPRJ},
  };
  const auto nets = NetVariants();
  for (const AlgoVariant& algo : algos) {
    mr::Dfs dfs;
    ASSERT_TRUE(dfs.WriteFile("r", SelfInputLines()).ok());
    ASSERT_TRUE(dfs.WriteFile("s", OuterInputLines()).ok());
    auto baseline = RunRSJoin(&dfs, "r", "s", "base", BaseConfig(algo));
    ASSERT_TRUE(baseline.ok())
        << algo.Name() << ": " << baseline.status().ToString();
    for (const NetVariant& net : nets) {
      const std::string prefix = std::string("net-") + net.name;
      auto socketed =
          RunRSJoin(&dfs, "r", "s", prefix, SocketConfig(algo, net));
      ASSERT_TRUE(socketed.ok())
          << algo.Name() << "/" << net.name << ": "
          << socketed.status().ToString();
      EXPECT_EQ(Lines(dfs, baseline->output_file),
                Lines(dfs, socketed->output_file))
          << algo.Name() << "/" << net.name;
      const NetTotals totals = TotalNetActivity(*socketed);
      EXPECT_GT(totals.fetches, 0u) << algo.Name() << "/" << net.name;
      if (net.expect_corruption_detected) {
        EXPECT_GT(totals.corruption, 0u) << algo.Name() << "/" << net.name;
      }
    }
  }
}

TEST(ShuffleNetPipelineTest, BinaryFormatAndEngineFaultsComposeWithSocket) {
  // The wire contract has to hold when the segments carry compressed
  // binary run blocks AND the engine's own fault injector is crashing
  // attempts underneath the network chaos.
  const AlgoVariant algo{Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                         Stage3Algorithm::kBRJ};
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());
  JoinConfig base = BaseConfig(algo);
  base.record_format = mr::RecordFormat::kBinary;
  base.block_codec = mr::BlockCodec::kFjlz;
  auto baseline = RunSelfJoin(&dfs, "records", "base", base);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto net = std::make_shared<mr::NetFaultPlan>();
  net->seed = 17;
  net->drop_probability = 0.2;
  net->corrupt_probability = 0.3;
  net->fault_attempts = 2;
  JoinConfig socketed = SocketConfig(algo, {"mixed", 3, net, true});
  socketed.record_format = mr::RecordFormat::kBinary;
  socketed.block_codec = mr::BlockCodec::kFjlz;
  auto engine_faults = std::make_shared<mr::FaultPlan>();
  engine_faults->seed = 5;
  engine_faults->crash_probability = 0.4;
  engine_faults->crash_after_records = 6;
  engine_faults->crash_failing_attempts = 2;
  socketed.fault_plan = std::move(engine_faults);
  auto chaos = RunSelfJoin(&dfs, "records", "chaos", socketed);
  ASSERT_TRUE(chaos.ok()) << chaos.status().ToString();
  EXPECT_EQ(Lines(dfs, baseline->output_file),
            Lines(dfs, chaos->output_file));
  EXPECT_GT(TotalNetActivity(*chaos).corruption, 0u);
}

TEST(ShuffleNetPipelineTest, LocalFallbackDisabledStillRecovers) {
  // With rung 2 off, a fetch that exhausts the transport's budget must
  // re-run the map attempt (rung 3) — and the output must not move.
  const AlgoVariant algo{Stage1Algorithm::kBTO, Stage2Algorithm::kPK,
                         Stage3Algorithm::kBRJ};
  mr::Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("records", SelfInputLines()).ok());
  auto baseline = RunSelfJoin(&dfs, "records", "base", BaseConfig(algo));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto net = std::make_shared<mr::NetFaultPlan>();
  net->seed = 19;
  net->drop_probability = 0.15;
  net->fault_attempts = 2;
  JoinConfig config = SocketConfig(algo, {"no-fallback", 2, net});
  config.net_fetch_local_fallback = false;
  auto run = RunSelfJoin(&dfs, "records", "nofb", config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(Lines(dfs, baseline->output_file), Lines(dfs, run->output_file));
}

}  // namespace
}  // namespace fj::join
