// Kernel correctness: PPJoin, PPJoin+, and All-Pairs must produce exactly
// the naive ground truth on randomized inputs, for self-joins and R-S
// joins, across similarity functions and thresholds. Also checks the
// memory-footprint behaviour (length-filter eviction) and filter stats.
#include "ppjoin/ppjoin.h"

#include <algorithm>
#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "ppjoin/allpairs.h"
#include "ppjoin/naive.h"

namespace fj::ppjoin {
namespace {

using sim::SimilarityFunction;
using sim::SimilaritySpec;

/// Random record collection over a Zipf-ish universe, with injected
/// near-duplicates so joins have results.
std::vector<TokenSetRecord> RandomRecords(size_t n, uint64_t seed,
                                          size_t universe = 120,
                                          size_t max_len = 14) {
  fj::Rng rng(seed);
  std::vector<TokenSetRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    TokenSetRecord record;
    record.rid = 1000 + i;
    if (!records.empty() && rng.NextBool(0.3)) {
      // Mutated copy of an earlier record.
      record.tokens = records[rng.NextBelow(records.size())].tokens;
      if (!record.tokens.empty() && rng.NextBool(0.6)) {
        record.tokens.erase(record.tokens.begin() +
                            static_cast<ptrdiff_t>(
                                rng.NextBelow(record.tokens.size())));
      }
      if (rng.NextBool(0.6)) {
        record.tokens.push_back(rng.NextBelow(universe));
      }
      std::sort(record.tokens.begin(), record.tokens.end());
      record.tokens.erase(
          std::unique(record.tokens.begin(), record.tokens.end()),
          record.tokens.end());
    } else {
      size_t len = 1 + rng.NextBelow(max_len);
      while (record.tokens.size() < len) {
        record.tokens.push_back(rng.NextBelow(universe));
        std::sort(record.tokens.begin(), record.tokens.end());
        record.tokens.erase(
            std::unique(record.tokens.begin(), record.tokens.end()),
            record.tokens.end());
      }
    }
    records.push_back(std::move(record));
  }
  return records;
}

struct KernelParam {
  SimilarityFunction fn;
  double tau;
  bool positional;
  bool suffix;
};

std::string KernelName(const testing::TestParamInfo<KernelParam>& info) {
  const KernelParam& p = info.param;
  std::string name = sim::SimilarityFunctionName(p.fn);
  name += '_';
  name += std::to_string(static_cast<int>(p.tau * 100));
  if (p.positional && p.suffix) {
    name += "_ppjoinplus";
  } else if (p.positional) {
    name += "_ppjoin";
  } else {
    name += "_allpairs";
  }
  return name;
}

class KernelEquivalenceTest : public testing::TestWithParam<KernelParam> {};

TEST_P(KernelEquivalenceTest, SelfJoinMatchesNaive) {
  const KernelParam& p = GetParam();
  SimilaritySpec spec(p.fn, p.tau);
  PPJoinOptions options;
  options.use_positional_filter = p.positional;
  options.use_suffix_filter = p.suffix;

  for (uint64_t seed : {1u, 2u, 3u}) {
    auto records = RandomRecords(150, seed);
    auto expected = NaiveSelfJoin(records, spec);
    auto got = PPJoinSelfJoin(records, spec, options);
    EXPECT_EQ(got, expected) << "seed " << seed;
  }
}

TEST_P(KernelEquivalenceTest, RSJoinMatchesNaive) {
  const KernelParam& p = GetParam();
  SimilaritySpec spec(p.fn, p.tau);
  PPJoinOptions options;
  options.use_positional_filter = p.positional;
  options.use_suffix_filter = p.suffix;

  auto r_records = RandomRecords(120, 5);
  auto s_records = RandomRecords(100, 6);
  // Make some S records near-duplicates of R records.
  fj::Rng rng(7);
  for (size_t i = 0; i < s_records.size(); i += 4) {
    s_records[i].tokens = r_records[rng.NextBelow(r_records.size())].tokens;
  }
  auto expected = NaiveRSJoin(r_records, s_records, spec);
  auto got = PPJoinRSJoin(r_records, s_records, spec, options);
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, KernelEquivalenceTest,
    testing::Values(
        KernelParam{SimilarityFunction::kJaccard, 0.8, true, true},
        KernelParam{SimilarityFunction::kJaccard, 0.8, true, false},
        KernelParam{SimilarityFunction::kJaccard, 0.8, false, false},
        KernelParam{SimilarityFunction::kJaccard, 0.5, true, true},
        KernelParam{SimilarityFunction::kJaccard, 0.95, true, true},
        KernelParam{SimilarityFunction::kCosine, 0.8, true, true},
        KernelParam{SimilarityFunction::kCosine, 0.9, false, false},
        KernelParam{SimilarityFunction::kDice, 0.8, true, true},
        KernelParam{SimilarityFunction::kDice, 0.7, true, false},
        KernelParam{SimilarityFunction::kOverlap, 0.8, true, true}),
    KernelName);

TEST(PPJoinStreamTest, EmptyAndSingletonInputs) {
  SimilaritySpec spec(SimilarityFunction::kJaccard, 0.8);
  PPJoinStream stream(spec);
  std::vector<SimilarPair> out;
  stream.ProbeAndInsert(TokenSetRecord{1, {}}, &out);  // empty record
  stream.ProbeAndInsert(TokenSetRecord{2, {5}}, &out);
  EXPECT_TRUE(out.empty());
  stream.ProbeAndInsert(TokenSetRecord{3, {5}}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (SimilarPair{2, 3, 1.0}));
}

TEST(PPJoinStreamTest, LengthFilterEvictsShortRecords) {
  SimilaritySpec spec(SimilarityFunction::kJaccard, 0.8);
  PPJoinStream stream(spec);
  std::vector<SimilarPair> out;
  // Insert records of strictly growing lengths; once a probe's lower bound
  // passes a record's length it must be evicted.
  for (size_t len = 1; len <= 40; ++len) {
    TokenSetRecord record;
    record.rid = len;
    for (size_t t = 0; t < len; ++t) {
      record.tokens.push_back(1000 * len + t);  // all-distinct universes
    }
    stream.ProbeAndInsert(record, &out);
  }
  EXPECT_TRUE(out.empty());
  EXPECT_GT(stream.stats().evicted_records, 0u);
  // Peak residency must be far below the total token count (sum 1..40).
  EXPECT_LT(stream.stats().peak_resident_tokens, 820u / 2);
}

TEST(PPJoinStreamTest, ArenaCompactionUnderHeavyEviction) {
  // Growing lengths over a shared universe force the length filter to
  // evict most of the index, which must trigger arena compaction (the
  // dead prefix repeatedly outgrows the live suffix) while keeping
  // results and the resident-token accounting exact. Run under
  // ASan/UBSan in CI, this test also shakes out stale arena pointers.
  SimilaritySpec spec(SimilarityFunction::kJaccard, 0.8);
  std::vector<TokenSetRecord> records;
  for (size_t i = 0; i < 240; ++i) {
    TokenSetRecord record;
    record.rid = i + 1;
    size_t len = 2 + i / 3;  // three records per length, non-decreasing
    std::vector<bool> used(211, false);
    while (record.tokens.size() < len) {
      size_t id = (i * 13 + record.tokens.size() * 29 + 7) % 211;
      while (used[id]) id = (id + 1) % 211;
      used[id] = true;
      record.tokens.push_back(id);
    }
    std::sort(record.tokens.begin(), record.tokens.end());
    records.push_back(std::move(record));
  }

  PPJoinStream stream(spec);
  std::vector<SimilarPair> pairs;
  for (const auto& record : records) stream.ProbeAndInsert(record, &pairs);
  SortAndDedupePairs(&pairs);
  EXPECT_EQ(pairs, NaiveSelfJoin(records, spec));

  // Exact accounting: after the last probe (length L), exactly the
  // records shorter than LengthLowerBound(L) are evicted, and
  // resident_tokens() is the summed length of the survivors.
  size_t last_len = records.back().tokens.size();
  size_t lower = spec.LengthLowerBound(last_len);
  uint64_t expected_resident = 0;
  uint64_t expected_evicted = 0;
  for (const auto& record : records) {
    if (record.tokens.size() >= lower) {
      expected_resident += record.tokens.size();
    } else {
      ++expected_evicted;
    }
  }
  EXPECT_EQ(stream.resident_tokens(), expected_resident);
  EXPECT_EQ(stream.stats().evicted_records, expected_evicted);
  EXPECT_GT(expected_evicted, 180u);  // the bulk of the index died
  EXPECT_LE(stream.stats().peak_resident_tokens,
            stream.stats().arena_bytes / sizeof(text::TokenId));
}

TEST(PPJoinStreamTest, StatsCountFilterActivity) {
  SimilaritySpec spec(SimilarityFunction::kJaccard, 0.8);
  auto records = RandomRecords(300, 17);
  PPJoinStats plus_stats;
  auto with_plus = PPJoinSelfJoin(records, spec, PPJoinOptions{}, &plus_stats);

  PPJoinOptions no_suffix;
  no_suffix.use_suffix_filter = false;
  PPJoinStats ppjoin_stats;
  auto without = PPJoinSelfJoin(records, spec, no_suffix, &ppjoin_stats);

  EXPECT_EQ(with_plus, without);
  EXPECT_EQ(plus_stats.probes, records.size());
  EXPECT_GT(plus_stats.candidates, 0u);
  // The suffix filter removes candidates before verification.
  EXPECT_EQ(ppjoin_stats.suffix_pruned, 0u);
  EXPECT_LE(plus_stats.verified, ppjoin_stats.verified);

  PPJoinStats allpairs_stats;
  auto allpairs = AllPairsSelfJoin(records, spec, &allpairs_stats);
  EXPECT_EQ(allpairs, with_plus);
  // All-Pairs verifies at least as many candidates as PPJoin.
  EXPECT_GE(allpairs_stats.verified, ppjoin_stats.verified);
  EXPECT_EQ(allpairs_stats.positional_pruned, 0u);
}

TEST(PPJoinStreamTest, SelfJoinOfIdenticalRecordsFindsAllPairs) {
  SimilaritySpec spec(SimilarityFunction::kJaccard, 0.9);
  std::vector<TokenSetRecord> records;
  for (uint64_t i = 0; i < 10; ++i) {
    records.push_back(TokenSetRecord{i, {1, 2, 3, 4, 5}});
  }
  auto got = PPJoinSelfJoin(records, spec);
  EXPECT_EQ(got.size(), 45u);  // C(10,2)
  for (const auto& pair : got) EXPECT_DOUBLE_EQ(pair.similarity, 1.0);
}

TEST(TokenSetTest, SortByLengthIsDeterministic) {
  std::vector<TokenSetRecord> records{
      {3, {1, 2}}, {1, {5, 6}}, {2, {1, 2, 3}}, {4, {9}}};
  SortByLength(&records);
  EXPECT_EQ(records[0].rid, 4u);
  EXPECT_EQ(records[1].rid, 1u);  // ties by rid
  EXPECT_EQ(records[2].rid, 3u);
  EXPECT_EQ(records[3].rid, 2u);
}

TEST(TokenSetTest, MakeSelfJoinPairCanonicalizes) {
  auto pair = MakeSelfJoinPair(9, 4, 0.5);
  EXPECT_EQ(pair.rid1, 4u);
  EXPECT_EQ(pair.rid2, 9u);
}

}  // namespace
}  // namespace fj::ppjoin
