// Randomized golden equivalence of the cache-conscious kernel: every
// variant (All-Pairs, PPJoin, PPJoin+), each with the bitmap
// pre-verification filter on and off, must produce exactly the naive
// ground truth — on corpora that include out-of-dictionary token ids
// (>= text::kUnknownTokenBase, exercising the fallback posting map), for
// self-joins and R-S joins. Also checks the filter-counter accounting
// invariants the bitmap filter must preserve.
#include <algorithm>
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "ppjoin/naive.h"
#include "ppjoin/ppjoin.h"
#include "text/token_ordering.h"

namespace fj::ppjoin {
namespace {

using sim::SimilarityFunction;
using sim::SimilaritySpec;
using text::TokenId;

/// Random records over a dense-rank universe plus a small shared pool of
/// out-of-dictionary ids, with injected near-duplicates so joins have
/// results. Unknown ids are drawn from a pool (not fresh hashes) so they
/// can actually collide between records.
std::vector<TokenSetRecord> RandomCorpus(size_t n, uint64_t seed,
                                         size_t universe = 100,
                                         size_t max_len = 16) {
  fj::Rng rng(seed);
  std::vector<TokenId> unknown_pool;
  for (uint64_t i = 1; i <= 12; ++i) {
    unknown_pool.push_back(text::kUnknownTokenBase | (0x9e3779b9ull * i));
  }
  std::vector<TokenSetRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    TokenSetRecord record;
    record.rid = 5000 + i;
    if (!records.empty() && rng.NextBool(0.35)) {
      record.tokens = records[rng.NextBelow(records.size())].tokens;
      if (!record.tokens.empty() && rng.NextBool(0.5)) {
        record.tokens.erase(
            record.tokens.begin() +
            static_cast<ptrdiff_t>(rng.NextBelow(record.tokens.size())));
      }
      if (rng.NextBool(0.5)) {
        record.tokens.push_back(rng.NextBelow(universe));
      }
    } else {
      size_t len = 1 + rng.NextBelow(max_len);
      for (size_t t = 0; t < len; ++t) {
        if (rng.NextBool(0.15)) {
          record.tokens.push_back(
              unknown_pool[rng.NextBelow(unknown_pool.size())]);
        } else {
          record.tokens.push_back(rng.NextBelow(universe));
        }
      }
    }
    std::sort(record.tokens.begin(), record.tokens.end());
    record.tokens.erase(
        std::unique(record.tokens.begin(), record.tokens.end()),
        record.tokens.end());
    if (record.tokens.empty()) record.tokens.push_back(rng.NextBelow(universe));
    records.push_back(std::move(record));
  }
  return records;
}

struct VariantConfig {
  const char* name;
  bool positional;
  bool suffix;
  bool bitmap;
};

constexpr VariantConfig kVariants[] = {
    {"allpairs", false, false, false},
    {"allpairs_bitmap", false, false, true},
    {"ppjoin", true, false, false},
    {"ppjoin_bitmap", true, false, true},
    {"ppjoinplus", true, true, false},
    {"ppjoinplus_bitmap", true, true, true},
};

PPJoinOptions MakeOptions(const VariantConfig& v) {
  PPJoinOptions options;
  options.use_positional_filter = v.positional;
  options.use_suffix_filter = v.suffix;
  options.use_bitmap_filter = v.bitmap;
  return options;
}

TEST(KernelGoldenEquivalenceTest, SelfJoinAllVariantsMatchNaive) {
  for (const auto& spec :
       {SimilaritySpec(SimilarityFunction::kJaccard, 0.8),
        SimilaritySpec(SimilarityFunction::kJaccard, 0.5),
        SimilaritySpec(SimilarityFunction::kCosine, 0.85),
        SimilaritySpec(SimilarityFunction::kDice, 0.7)}) {
    for (uint64_t seed : {11u, 12u, 13u}) {
      auto records = RandomCorpus(160, seed);
      auto expected = NaiveSelfJoin(records, spec);
      for (const VariantConfig& v : kVariants) {
        auto got = PPJoinSelfJoin(records, spec, MakeOptions(v));
        EXPECT_EQ(got, expected)
            << v.name << " seed " << seed << " spec " << spec.ToString();
      }
    }
  }
}

TEST(KernelGoldenEquivalenceTest, RSJoinAllVariantsMatchNaive) {
  SimilaritySpec spec(SimilarityFunction::kJaccard, 0.75);
  auto r_records = RandomCorpus(130, 21);
  auto s_records = RandomCorpus(110, 22);
  // Cross-contaminate so the R-S join has matches (including via
  // out-of-dictionary tokens carried over from R).
  fj::Rng rng(23);
  for (size_t i = 0; i < s_records.size(); i += 3) {
    s_records[i].tokens = r_records[rng.NextBelow(r_records.size())].tokens;
  }
  auto expected = NaiveRSJoin(r_records, s_records, spec);
  ASSERT_FALSE(expected.empty());
  for (const VariantConfig& v : kVariants) {
    auto got = PPJoinRSJoin(r_records, s_records, spec, MakeOptions(v));
    EXPECT_EQ(got, expected) << v.name;
  }
}

/// The bitmap filter must be pure pruning: identical probes, candidates,
/// and results whether it is on or off; every candidate it removes would
/// have failed the later checks. Its counters must satisfy the accounting
/// identity: the candidates a probe collects are split among suffix
/// prunes, bitmap prunes, verifications, and late positional prunes.
TEST(KernelGoldenEquivalenceTest, BitmapStatsInvariants) {
  SimilaritySpec spec(SimilarityFunction::kJaccard, 0.8);
  uint64_t total_bitmap_pruned = 0;
  for (uint64_t seed : {31u, 32u, 33u}) {
    auto records = RandomCorpus(200, seed);
    for (bool suffix : {false, true}) {
      PPJoinOptions with_bitmap;
      with_bitmap.use_suffix_filter = suffix;
      PPJoinOptions without_bitmap = with_bitmap;
      without_bitmap.use_bitmap_filter = false;

      PPJoinStats on_stats, off_stats;
      auto on = PPJoinSelfJoin(records, spec, with_bitmap, &on_stats);
      auto off = PPJoinSelfJoin(records, spec, without_bitmap, &off_stats);

      EXPECT_EQ(on, off);
      EXPECT_EQ(on_stats.probes, off_stats.probes);
      EXPECT_EQ(on_stats.candidates, off_stats.candidates);
      EXPECT_EQ(on_stats.results, off_stats.results);
      EXPECT_EQ(off_stats.bitmap_pruned, 0u);
      // Everything the bitmap prunes would have been pruned or failed
      // verification anyway.
      EXPECT_LE(on_stats.verified, off_stats.verified);

      // Per-run accounting: each candidate ends as a suffix prune, a
      // bitmap prune, a verification, or a late positional prune.
      for (const PPJoinStats& s : {on_stats, off_stats}) {
        uint64_t accounted = s.suffix_pruned + s.bitmap_pruned + s.verified;
        EXPECT_LE(accounted, s.candidates);
        EXPECT_GE(accounted + s.positional_pruned, s.candidates);
      }

      // The dense index and arena accounting must be active.
      EXPECT_GT(on_stats.hash_lookups_avoided, 0u);
      EXPECT_GT(on_stats.arena_bytes, 0u);
      total_bitmap_pruned += on_stats.bitmap_pruned;
    }
  }
  // Across all seeds the filter must actually engage.
  EXPECT_GT(total_bitmap_pruned, 0u);
}

}  // namespace
}  // namespace fj::ppjoin
