// MinHash-LSH approximate join: signature agreement estimates Jaccard,
// output is a subset of the exact result with perfect precision, and
// recall tracks the 1-(1-s^r)^b curve.
#include "ppjoin/minhash_lsh.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "ppjoin/naive.h"

namespace fj::ppjoin {
namespace {

using sim::SimilarityFunction;
using sim::SimilaritySpec;

TokenSetRecord MakeRecord(uint64_t rid, std::initializer_list<TokenId> ids) {
  TokenSetRecord record{rid, ids};
  std::sort(record.tokens.begin(), record.tokens.end());
  return record;
}

TEST(MinHashTest, IdenticalSetsHaveIdenticalSignatures) {
  auto a = MakeRecord(1, {3, 7, 9});
  auto b = MakeRecord(2, {3, 7, 9});
  EXPECT_EQ(MinHashSignature(a, 64, 1), MinHashSignature(b, 64, 1));
}

TEST(MinHashTest, SignatureAgreementEstimatesJaccard) {
  // Two sets with Jaccard 0.5: expect ~half the slots to agree.
  TokenSetRecord a{1, {}}, b{2, {}};
  for (TokenId t = 0; t < 200; ++t) {
    if (t < 100) a.tokens.push_back(t);       // 0..99
    if (t >= 50 && t < 150) b.tokens.push_back(t);  // 50..149
  }
  // jaccard = 50 / 150 = 1/3.
  const size_t hashes = 3000;
  auto sa = MinHashSignature(a, hashes, 7);
  auto sb = MinHashSignature(b, hashes, 7);
  size_t agree = 0;
  for (size_t k = 0; k < hashes; ++k) agree += sa[k] == sb[k];
  EXPECT_NEAR(static_cast<double>(agree) / hashes, 1.0 / 3.0, 0.04);
}

TEST(MinHashTest, DifferentSeedsGiveDifferentSignatures) {
  auto a = MakeRecord(1, {3, 7, 9, 11, 20});
  EXPECT_NE(MinHashSignature(a, 16, 1), MinHashSignature(a, 16, 2));
}

TEST(LshProbabilityTest, SCurveShape) {
  MinHashLshOptions options;
  options.num_bands = 16;
  options.rows_per_band = 4;
  EXPECT_NEAR(LshCandidateProbability(1.0, options), 1.0, 1e-12);
  EXPECT_LT(LshCandidateProbability(0.2, options), 0.05);
  EXPECT_GT(LshCandidateProbability(0.9, options), 0.99);
  // Monotone in similarity.
  double prev = 0;
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    double p = LshCandidateProbability(s, options);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
}

std::vector<TokenSetRecord> CorrelatedRecords(size_t n, uint64_t seed) {
  fj::Rng rng(seed);
  std::vector<TokenSetRecord> records;
  for (size_t i = 0; i < n; ++i) {
    TokenSetRecord record;
    record.rid = i + 1;
    if (!records.empty() && rng.NextBool(0.35)) {
      record.tokens = records[rng.NextBelow(records.size())].tokens;
      if (!record.tokens.empty() && rng.NextBool(0.5)) {
        record.tokens.erase(record.tokens.begin() +
                            static_cast<ptrdiff_t>(
                                rng.NextBelow(record.tokens.size())));
      }
    } else {
      size_t len = 6 + rng.NextBelow(8);
      while (record.tokens.size() < len) {
        record.tokens.push_back(rng.NextBelow(300));
        std::sort(record.tokens.begin(), record.tokens.end());
        record.tokens.erase(
            std::unique(record.tokens.begin(), record.tokens.end()),
            record.tokens.end());
      }
    }
    records.push_back(std::move(record));
  }
  return records;
}

TEST(LshJoinTest, PerfectPrecisionAndHighRecall) {
  auto records = CorrelatedRecords(400, 11);
  SimilaritySpec spec(SimilarityFunction::kJaccard, 0.8);
  auto exact = NaiveSelfJoin(records, spec);
  ASSERT_GT(exact.size(), 20u);

  MinHashLshOptions options;
  options.num_bands = 24;
  options.rows_per_band = 4;  // P(candidate | s=0.8) ~ 1-(1-0.41)^24 ~ 1.0
  MinHashLshStats stats;
  auto approx = MinHashLshSelfJoin(records, spec, options, &stats);

  // Precision 1: every returned pair is in the exact result.
  std::set<SimilarPair> exact_set(exact.begin(), exact.end());
  for (const auto& pair : approx) {
    EXPECT_TRUE(exact_set.count(pair))
        << "false positive " << pair.rid1 << "," << pair.rid2;
  }
  // Recall near 1 at these parameters.
  double recall = static_cast<double>(approx.size()) / exact.size();
  EXPECT_GT(recall, 0.95);
  EXPECT_GT(stats.candidate_pairs, 0u);
  EXPECT_EQ(stats.results, approx.size());
}

TEST(LshJoinTest, WeakParametersLoseRecall) {
  auto records = CorrelatedRecords(400, 12);
  SimilaritySpec spec(SimilarityFunction::kJaccard, 0.8);
  auto exact = NaiveSelfJoin(records, spec);
  ASSERT_GT(exact.size(), 20u);

  MinHashLshOptions strong;
  strong.num_bands = 24;
  strong.rows_per_band = 4;
  MinHashLshOptions weak;
  weak.num_bands = 2;
  weak.rows_per_band = 12;  // P(candidate | s=0.8) ~ 0.13
  auto strong_result = MinHashLshSelfJoin(records, spec, strong);
  auto weak_result = MinHashLshSelfJoin(records, spec, weak);
  EXPECT_LT(weak_result.size(), strong_result.size());
}

TEST(LshJoinTest, EmptyRecordsIgnored) {
  std::vector<TokenSetRecord> records{
      {1, {}}, {2, {5, 6, 7}}, {3, {5, 6, 7}}, {4, {}}};
  SimilaritySpec spec(SimilarityFunction::kJaccard, 0.8);
  auto pairs = MinHashLshSelfJoin(records, spec);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].rid1, 2u);
  EXPECT_EQ(pairs[0].rid2, 3u);
}

TEST(LshJoinTest, DeterministicForFixedSeed) {
  auto records = CorrelatedRecords(200, 13);
  SimilaritySpec spec(SimilarityFunction::kJaccard, 0.8);
  auto a = MinHashLshSelfJoin(records, spec);
  auto b = MinHashLshSelfJoin(records, spec);
  EXPECT_EQ(a, b);
}

TEST(BandKeysTest, DeterministicAcrossRunsGoldenValues) {
  // Band keys are pure functions of (signature, options) with no
  // per-process state (no ASLR-dependent pointers, no global counters):
  // the serving index persists bucket contents derived from them across
  // snapshots, so these exact values are part of the on-disk contract.
  // If this test breaks, the snapshot format has silently changed.
  auto record = MakeRecord(1, {3, 7, 9, 11, 20});
  MinHashLshOptions options;
  options.num_bands = 4;
  options.rows_per_band = 2;
  options.seed = 0x5eed;
  auto signature =
      MinHashSignature(record, options.num_bands * options.rows_per_band,
                       options.seed);
  auto keys = BandKeys(signature, options);
  ASSERT_EQ(keys.size(), 4u);
  EXPECT_EQ(keys[0], 0x2d807f514807d158ULL);
  EXPECT_EQ(keys[1], 0xfb3b3bbc9b946424ULL);
  EXPECT_EQ(keys[2], 0x814c8174dcc125c8ULL);
  EXPECT_EQ(keys[3], 0x63db9dbc38af88edULL);
}

TEST(BandKeysTest, SameSetSameKeysDifferentSetUsuallyNot) {
  MinHashLshOptions options;
  options.num_bands = 8;
  options.rows_per_band = 4;
  auto a = MakeRecord(1, {2, 4, 6, 8, 10});
  auto b = MakeRecord(9, {2, 4, 6, 8, 10});
  const size_t hashes = options.num_bands * options.rows_per_band;
  EXPECT_EQ(BandKeys(MinHashSignature(a, hashes, options.seed), options),
            BandKeys(MinHashSignature(b, hashes, options.seed), options));
  auto c = MakeRecord(2, {100, 200, 300, 400, 500});
  auto keys_a = BandKeys(MinHashSignature(a, hashes, options.seed), options);
  auto keys_c = BandKeys(MinHashSignature(c, hashes, options.seed), options);
  size_t agree = 0;
  for (size_t band = 0; band < options.num_bands; ++band) {
    agree += keys_a[band] == keys_c[band];
  }
  EXPECT_EQ(agree, 0u) << "disjoint sets should share no band bucket";
}

TEST(LshJoinTest, RecallLowerBoundProperty) {
  // At (bands=24, rows=4, tau=0.8) theory gives per-pair candidate
  // probability >= 1-(1-0.8^4)^24 ~ 0.9999997 for pairs AT the
  // threshold — and higher above it. Over repeated trials with different
  // data seeds, measured recall must stay above a conservative 0.95
  // lower bound (the slack absorbs the variance of small exact sets).
  MinHashLshOptions options;
  options.num_bands = 24;
  options.rows_per_band = 4;
  SimilaritySpec spec(SimilarityFunction::kJaccard, 0.8);
  double p_at_tau = LshCandidateProbability(0.8, options);
  ASSERT_GT(p_at_tau, 0.999);
  size_t exact_total = 0, found_total = 0;
  for (uint64_t seed = 21; seed < 26; ++seed) {
    auto records = CorrelatedRecords(300, seed);
    auto exact = NaiveSelfJoin(records, spec);
    auto approx = MinHashLshSelfJoin(records, spec, options);
    std::set<SimilarPair> exact_set(exact.begin(), exact.end());
    for (const auto& pair : approx) {
      ASSERT_TRUE(exact_set.count(pair));  // precision stays perfect
    }
    exact_total += exact.size();
    found_total += approx.size();
  }
  ASSERT_GT(exact_total, 100u);
  EXPECT_GT(static_cast<double>(found_total),
            0.95 * static_cast<double>(exact_total));
}

TEST(LshJoinTest, EmptyAndSingletonEdgeCases) {
  SimilaritySpec spec(SimilarityFunction::kJaccard, 0.8);
  // Empty input collection.
  EXPECT_TRUE(MinHashLshSelfJoin({}, spec).empty());
  // All-empty token sets produce nothing (and no bucket explosions).
  EXPECT_TRUE(MinHashLshSelfJoin({{1, {}}, {2, {}}}, spec).empty());
  // Identical singletons always collide in every band and join at 1.0.
  std::vector<TokenSetRecord> singles{{1, {42}}, {2, {42}}, {3, {7}}};
  auto pairs = MinHashLshSelfJoin(singles, spec);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].rid1, 1u);
  EXPECT_EQ(pairs[0].rid2, 2u);
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 1.0);
  // A single record can never pair with itself.
  EXPECT_TRUE(MinHashLshSelfJoin({{1, {1, 2, 3}}}, spec).empty());
  // MinHash of a singleton: every slot is the hash of its only token.
  auto signature = MinHashSignature({1, {42}}, 8, 3);
  auto again = MinHashSignature({2, {42}}, 8, 3);
  EXPECT_EQ(signature, again);
}

}  // namespace
}  // namespace fj::ppjoin
