// Positional- and suffix-filter tests: both must be *sound* (never prune a
// pair that meets the overlap requirement) — checked property-style — and
// should actually prune in the easy cases.
#include "similarity/filters.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "similarity/similarity.h"

namespace fj::sim {
namespace {

TEST(PositionalFilterTest, BoundsMatchHandComputation) {
  // |x|=5, |y|=5, first match at x[0] / y[2], nothing accumulated:
  // at most 1 + min(4, 2) = 3 total.
  EXPECT_EQ(PositionalUpperBound(5, 5, 0, 2, 0), 3u);
  EXPECT_TRUE(PassesPositionalFilter(5, 5, 0, 2, 0, 3));
  EXPECT_FALSE(PassesPositionalFilter(5, 5, 0, 2, 0, 4));
}

TEST(PositionalFilterTest, AccumulatedMatchesRaiseTheBound) {
  EXPECT_EQ(PositionalUpperBound(10, 10, 4, 4, 3), 3 + 1 + 5u);
}

TEST(PositionalFilterTest, IsSound) {
  // For random sets and every common token position, the positional bound
  // must be >= the true overlap.
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<TokenId> x, y;
    for (TokenId t = 0; t < 30; ++t) {
      if (rng.NextBool(0.35)) x.push_back(t);
      if (rng.NextBool(0.35)) y.push_back(t);
    }
    if (x.empty() || y.empty()) continue;
    size_t overlap = OverlapSize(x, y);
    for (size_t i = 0; i < x.size(); ++i) {
      for (size_t j = 0; j < y.size(); ++j) {
        if (x[i] != y[j]) continue;
        // Overlap accumulated strictly before (i, j):
        std::vector<TokenId> xp(x.begin(), x.begin() + i);
        std::vector<TokenId> yp(y.begin(), y.begin() + j);
        size_t acc = OverlapSize(xp, yp);
        EXPECT_GE(PositionalUpperBound(x.size(), y.size(), i, j, acc),
                  overlap)
            << "positional bound under-estimated the overlap";
      }
    }
  }
}

TEST(SuffixFilterTest, HammingBoundNeverExceedsTruth) {
  // BoundHamming must be a LOWER bound on the true Hamming (symmetric
  // difference) distance whenever it is <= hmax (the early-exit contract:
  // values above hmax only need to stay above hmax).
  Rng rng(7);
  SuffixFilter filter(/*max_depth=*/3);
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<TokenId> x, y;
    for (TokenId t = 0; t < 24; ++t) {
      if (rng.NextBool(0.4)) x.push_back(t);
      if (rng.NextBool(0.4)) y.push_back(t);
    }
    size_t overlap = OverlapSize(x, y);
    int64_t truth =
        static_cast<int64_t>(x.size() + y.size()) - 2 * static_cast<int64_t>(overlap);
    int64_t bound = filter.BoundHamming(x, y, /*hmax=*/1000, 1);
    EXPECT_LE(bound, truth) << "suffix filter over-estimated Hamming";
  }
}

TEST(SuffixFilterTest, MayQualifyIsSound) {
  // If the true overlap of the suffixes is >= required, MayQualify must
  // return true.
  Rng rng(13);
  SuffixFilter filter(2);
  int pruned = 0, kept = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    std::vector<TokenId> x, y;
    for (TokenId t = 0; t < 20; ++t) {
      if (rng.NextBool(0.45)) x.push_back(t);
      if (rng.NextBool(0.45)) y.push_back(t);
    }
    size_t overlap = OverlapSize(x, y);
    for (size_t required = 0; required <= overlap; ++required) {
      EXPECT_TRUE(filter.MayQualify(x, y, required))
          << "pruned a pair with overlap " << overlap << " >= " << required;
    }
    // Count pruning effectiveness one step beyond the truth.
    if (overlap + 1 <= std::min(x.size(), y.size())) {
      if (filter.MayQualify(x, y, overlap + 1)) {
        ++kept;
      } else {
        ++pruned;
      }
    }
  }
  // The filter is a bounded-depth heuristic, not exact: at the tightest
  // possible requirement (truth + 1) it still prunes a meaningful share.
  EXPECT_GT(pruned, 100);
  EXPECT_GT(kept, 0);  // and it is not vacuously rejecting everything
}

TEST(SuffixFilterTest, PrunesObviouslyImpossiblePairs) {
  SuffixFilter filter(2);
  std::vector<TokenId> x{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<TokenId> y{101, 102, 103, 104, 105, 106, 107, 108};
  EXPECT_FALSE(filter.MayQualify(x, y, 7));
}

TEST(SuffixFilterTest, RequiredOverlapBeyondSizesPrunes) {
  SuffixFilter filter(2);
  std::vector<TokenId> x{1, 2};
  std::vector<TokenId> y{1, 2};
  EXPECT_TRUE(filter.MayQualify(x, y, 2));
  EXPECT_FALSE(filter.MayQualify(x, y, 3));  // overlap can't exceed min size
}

TEST(SuffixFilterTest, EmptySuffixes) {
  SuffixFilter filter(2);
  std::vector<TokenId> empty;
  std::vector<TokenId> x{1, 2, 3};
  EXPECT_TRUE(filter.MayQualify(empty, empty, 0));
  EXPECT_FALSE(filter.MayQualify(empty, x, 1));
  EXPECT_TRUE(filter.MayQualify(empty, x, 0));
}

TEST(BitmapSignatureTest, BoundIsSoundOnRandomSets) {
  // The signature bound must never understate the true overlap, for any
  // pair of random sets (including heavy bit collisions: universe larger
  // than 128 bits).
  Rng rng(41);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<TokenId> x, y;
    for (TokenId t = 0; t < 400; ++t) {
      if (rng.NextBool(0.05)) x.push_back(t);
      if (rng.NextBool(0.05)) y.push_back(t);
    }
    if (x.empty() || y.empty()) continue;
    BitmapSignature sx = BuildBitmapSignature(x);
    BitmapSignature sy = BuildBitmapSignature(y);
    size_t bound = BitmapOverlapUpperBound(sx, sy, x.size(), y.size());
    EXPECT_GE(bound, OverlapSize(x, y));
  }
}

TEST(BitmapSignatureTest, IdenticalSetsGetFullBound) {
  std::vector<TokenId> x{3, 17, 99, 1000000};
  BitmapSignature sig = BuildBitmapSignature(x);
  EXPECT_EQ(BitmapOverlapUpperBound(sig, sig, x.size(), x.size()), x.size());
}

TEST(BitmapSignatureTest, DisjointSmallSetsPrune) {
  // Two disjoint singletons that hash to different bits: the symmetric
  // difference is 2, so the bound is 0.
  std::vector<TokenId> x{1};
  std::vector<TokenId> y{2};
  ASSERT_NE(BitmapBitOf(1), BitmapBitOf(2));
  EXPECT_EQ(BitmapOverlapUpperBound(BuildBitmapSignature(x),
                                    BuildBitmapSignature(y), 1, 1),
            0u);
}

TEST(SuffixFilterTest, DepthZeroDegradesToLengthDifference) {
  SuffixFilter filter(0);
  std::vector<TokenId> x{1, 2, 3, 4};
  std::vector<TokenId> y{9, 10, 11, 12};
  // depth 1 > max_depth 0 immediately: bound = |4 - 4| = 0, so nothing is
  // pruned — still sound, just toothless.
  EXPECT_EQ(filter.BoundHamming(x, y, 100, 1), 0);
  EXPECT_TRUE(filter.MayQualify(x, y, 4));
}

}  // namespace
}  // namespace fj::sim
