// Edit-distance support (paper footnote 1): exact DP, banded early-exit
// verification, and the q-gram-filtered self-join, all validated against
// brute force on randomized inputs.
#include "similarity/edit_distance.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fj::sim {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("intention", "execution"), 5u);
  EXPECT_EQ(LevenshteinDistance("a", "b"), 1u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("sunday", "saturday"),
            LevenshteinDistance("saturday", "sunday"));
}

std::string RandomString(Rng* rng, size_t max_len, int alphabet = 4) {
  size_t len = rng->NextBelow(max_len + 1);
  std::string s;
  for (size_t i = 0; i < len; ++i) {
    s += static_cast<char>('a' + rng->NextBelow(alphabet));
  }
  return s;
}

TEST(BandedEditDistanceTest, AgreesWithFullDPOnRandomStrings) {
  Rng rng(77);
  for (int trial = 0; trial < 5000; ++trial) {
    std::string a = RandomString(&rng, 12);
    std::string b = RandomString(&rng, 12);
    size_t truth = LevenshteinDistance(a, b);
    for (size_t d = 0; d <= 6; ++d) {
      EXPECT_EQ(WithinEditDistance(a, b, d), truth <= d)
          << "a=" << a << " b=" << b << " d=" << d << " truth=" << truth;
    }
  }
}

TEST(BandedEditDistanceTest, LengthGapShortCircuits) {
  EXPECT_FALSE(WithinEditDistance("ab", "abcdefgh", 3));
  EXPECT_TRUE(WithinEditDistance("ab", "abcde", 3));
}

TEST(BandedEditDistanceTest, ZeroDistanceMeansEquality) {
  EXPECT_TRUE(WithinEditDistance("same", "same", 0));
  EXPECT_FALSE(WithinEditDistance("same", "sane", 0));
}

class EditJoinTest : public testing::TestWithParam<size_t> {};

TEST_P(EditJoinTest, MatchesBruteForce) {
  size_t max_distance = GetParam();
  Rng rng(31 + max_distance);
  // Strings with injected near-duplicates so joins have results.
  std::vector<std::string> strings;
  for (int i = 0; i < 150; ++i) {
    if (!strings.empty() && rng.NextBool(0.4)) {
      std::string mutated = strings[rng.NextBelow(strings.size())];
      size_t edits = rng.NextBelow(3);
      for (size_t e = 0; e < edits && !mutated.empty(); ++e) {
        size_t pos = rng.NextBelow(mutated.size());
        switch (rng.NextBelow(3)) {
          case 0:
            mutated[pos] = static_cast<char>('a' + rng.NextBelow(6));
            break;
          case 1:
            mutated.erase(pos, 1);
            break;
          default:
            mutated.insert(pos, 1, static_cast<char>('a' + rng.NextBelow(6)));
        }
      }
      strings.push_back(mutated);
    } else {
      strings.push_back(RandomString(&rng, 16, 6));
    }
  }
  auto expected = NaiveEditDistanceSelfJoin(strings, max_distance);
  for (size_t q : {2u, 3u, 4u}) {
    auto got = EditDistanceSelfJoin(strings, max_distance, q);
    EXPECT_EQ(got, expected) << "q=" << q << " d=" << max_distance;
  }
  EXPECT_FALSE(expected.empty()) << "vacuous test";
}

INSTANTIATE_TEST_SUITE_P(Thresholds, EditJoinTest,
                         testing::Values(0u, 1u, 2u, 3u),
                         [](const testing::TestParamInfo<size_t>& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(EditJoinTest, EmptyInputAndEmptyStrings) {
  EXPECT_TRUE(EditDistanceSelfJoin({}, 2).empty());
  std::vector<std::string> strings{"", "", "a"};
  auto pairs = EditDistanceSelfJoin(strings, 1);
  // ("", "") at distance 0; ("", "a") twice at distance 1.
  EXPECT_EQ(pairs.size(), 3u);
}

TEST(EditJoinTest, RSJoinMatchesBruteForce) {
  Rng rng(47);
  std::vector<std::string> r_strings, s_strings;
  for (int i = 0; i < 100; ++i) r_strings.push_back(RandomString(&rng, 14, 5));
  for (int i = 0; i < 80; ++i) {
    if (rng.NextBool(0.5)) {
      std::string mutated = r_strings[rng.NextBelow(r_strings.size())];
      if (!mutated.empty()) {
        mutated[rng.NextBelow(mutated.size())] =
            static_cast<char>('a' + rng.NextBelow(5));
      }
      s_strings.push_back(mutated);
    } else {
      s_strings.push_back(RandomString(&rng, 14, 5));
    }
  }
  for (size_t d : {0u, 1u, 2u, 3u}) {
    auto expected = NaiveEditDistanceRSJoin(r_strings, s_strings, d);
    for (size_t q : {2u, 3u}) {
      EXPECT_EQ(EditDistanceRSJoin(r_strings, s_strings, d, q), expected)
          << "d=" << d << " q=" << q;
    }
  }
}

TEST(EditJoinTest, RSJoinEmptySides) {
  EXPECT_TRUE(EditDistanceRSJoin({}, {"a"}, 2).empty());
  EXPECT_TRUE(EditDistanceRSJoin({"a"}, {}, 2).empty());
  auto pairs = EditDistanceRSJoin({"abc"}, {"abd", "xyz"}, 1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (EditDistancePair{0, 0, 1}));
}

TEST(EditJoinTest, RSJoinShortStringsOnBothSides) {
  // Strings below the q*d gram prefix threshold on either side.
  std::vector<std::string> r{"", "a", "abcdefgh"};
  std::vector<std::string> s{"b", "", "abcdefgx"};
  auto expected = NaiveEditDistanceRSJoin(r, s, 2);
  EXPECT_EQ(EditDistanceRSJoin(r, s, 2, 3), expected);
  EXPECT_FALSE(expected.empty());
}

TEST(EditJoinTest, ReportsExactDistances) {
  std::vector<std::string> strings{"vernica", "varnica", "carey", "care"};
  auto pairs = EditDistanceSelfJoin(strings, 2);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (EditDistancePair{0, 1, 1}));
  EXPECT_EQ(pairs[1], (EditDistancePair{2, 3, 1}));
}

}  // namespace
}  // namespace fj::sim
