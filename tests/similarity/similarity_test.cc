// Filter-bound arithmetic: the prefix-filter, length-filter, and
// min-overlap formulas must be *sound* (never exclude a qualifying pair)
// and *consistent* with the exact similarity computation. Soundness is
// checked property-style over parameter sweeps.
#include "similarity/similarity.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace fj::sim {
namespace {

std::vector<TokenId> MakeSet(std::initializer_list<TokenId> ids) {
  std::vector<TokenId> v(ids);
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SimilarityTest, JaccardMatchesPaperExample) {
  // "I will call back" vs "I will call you soon": 3 shared of 6 distinct.
  auto x = MakeSet({1, 2, 3, 4});      // i will call back
  auto y = MakeSet({1, 2, 3, 5, 6});   // i will call you soon
  SimilaritySpec spec(SimilarityFunction::kJaccard, 0.5);
  EXPECT_DOUBLE_EQ(spec.Similarity(x, y), 0.5);
  EXPECT_TRUE(spec.Satisfies(x, y));
}

TEST(SimilarityTest, IdenticalSetsHaveSimilarityOne) {
  auto x = MakeSet({3, 7, 9, 20});
  for (auto fn : {SimilarityFunction::kJaccard, SimilarityFunction::kCosine,
                  SimilarityFunction::kDice, SimilarityFunction::kOverlap}) {
    SimilaritySpec spec(fn, 1.0);
    EXPECT_DOUBLE_EQ(spec.Similarity(x, x), 1.0) << SimilarityFunctionName(fn);
    EXPECT_TRUE(spec.Satisfies(x, x));
  }
}

TEST(SimilarityTest, DisjointSetsHaveSimilarityZero) {
  auto x = MakeSet({1, 2, 3});
  auto y = MakeSet({4, 5, 6});
  for (auto fn : {SimilarityFunction::kJaccard, SimilarityFunction::kCosine,
                  SimilarityFunction::kDice, SimilarityFunction::kOverlap}) {
    SimilaritySpec spec(fn, 0.5);
    EXPECT_DOUBLE_EQ(spec.Similarity(x, y), 0.0);
    EXPECT_FALSE(spec.Satisfies(x, y));
  }
}

TEST(SimilarityTest, EmptySetsNeverSatisfy) {
  std::vector<TokenId> empty;
  auto x = MakeSet({1, 2});
  SimilaritySpec spec(SimilarityFunction::kJaccard, 0.1);
  EXPECT_FALSE(spec.Satisfies(empty, x));
  EXPECT_FALSE(spec.Satisfies(x, empty));
  EXPECT_FALSE(spec.Satisfies(empty, empty));
}

TEST(SimilarityTest, CeilTimesIsRobustToFloatingPoint) {
  // 0.8 * 5 == 4.000000000000001 in doubles; ceil must give 4, not 5.
  EXPECT_EQ(CeilTimes(0.8, 5), 4u);
  EXPECT_EQ(CeilTimes(0.8, 10), 8u);
  EXPECT_EQ(CeilTimes(0.1, 10), 1u);
  EXPECT_EQ(CeilTimes(0.3, 10), 3u);
  EXPECT_EQ(CeilTimes(0.8, 0), 0u);
  EXPECT_EQ(CeilTimes(0.85, 10), 9u);  // 8.5 -> 9
  EXPECT_EQ(FloorTimes(1.0 / 0.8, 8), 10u);
  EXPECT_EQ(FloorTimes(0.3, 10), 3u);
}

TEST(SimilarityTest, KnownJaccardBounds) {
  SimilaritySpec spec(SimilarityFunction::kJaccard, 0.8);
  // |x| = 10: partners in [8, 12]; overlap with |y|=10 must be >= 9.
  EXPECT_EQ(spec.LengthLowerBound(10), 8u);
  EXPECT_EQ(spec.LengthUpperBound(10), 12u);
  EXPECT_EQ(spec.MinOverlap(10, 10), 9u);
  // Prefix = 10 - alpha(10, 8) + 1 = 10 - 8 + 1 = 3.
  EXPECT_EQ(spec.MinOverlap(10, 8), 8u);
  EXPECT_EQ(spec.PrefixLength(10), 3u);
}

TEST(SimilarityTest, OverlapFunctionHasDegeneratePrefix) {
  // overlap/min admits partners of any size, so the whole record is prefix.
  SimilaritySpec spec(SimilarityFunction::kOverlap, 0.8);
  EXPECT_EQ(spec.LengthLowerBound(10), 1u);
  EXPECT_EQ(spec.LengthUpperBound(10),
            std::numeric_limits<size_t>::max());
  EXPECT_EQ(spec.PrefixLength(10), 10u);
}

TEST(SimilarityTest, VerifyOverlapEarlyTermination) {
  auto x = MakeSet({1, 2, 3, 4, 5});
  auto y = MakeSet({6, 7, 8, 9, 10});
  // Requiring any overlap fails immediately.
  EXPECT_EQ(VerifyOverlap(x, y, 0, 0, 0, 1), kOverlapFailed);
  auto z = MakeSet({1, 2, 3, 11, 12});
  EXPECT_EQ(VerifyOverlap(x, z, 0, 0, 0, 3), 3u);
  EXPECT_EQ(VerifyOverlap(x, z, 0, 0, 0, 4), kOverlapFailed);
}

TEST(SimilarityTest, VerifyOverlapResumesMidway) {
  auto x = MakeSet({1, 2, 3, 4});
  auto y = MakeSet({1, 2, 3, 5});
  // Resume after both position 1 with 2 matches already accumulated.
  EXPECT_EQ(VerifyOverlap(x, y, 2, 2, 2, 3), 3u);
}

TEST(SimilarityTest, NameRoundTrip) {
  for (auto fn : {SimilarityFunction::kJaccard, SimilarityFunction::kCosine,
                  SimilarityFunction::kDice, SimilarityFunction::kOverlap}) {
    auto parsed = SimilarityFunctionFromName(SimilarityFunctionName(fn));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), fn);
  }
  EXPECT_FALSE(SimilarityFunctionFromName("euclidean").ok());
}

// ----------------------------------------------------------------- sweeps

struct SweepParam {
  SimilarityFunction fn;
  double tau;
};

class BoundSoundnessTest : public testing::TestWithParam<SweepParam> {};

// Property: for every pair of random sets that satisfies the predicate,
// (a) the partner's size lies within the length bounds,
// (b) the overlap is at least MinOverlap, and
// (c) the two prefixes share at least one token (the prefix-filter
//     pigeonhole guarantee the whole paper rests on).
TEST_P(BoundSoundnessTest, FiltersNeverExcludeQualifyingPairs) {
  const SweepParam& p = GetParam();
  SimilaritySpec spec(p.fn, p.tau);
  Rng rng(0xC0FFEE ^ static_cast<uint64_t>(p.tau * 1000));

  int qualifying = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    // Correlated pairs: y is a mutation of x, so a healthy share of trials
    // lands above even high thresholds.
    std::vector<TokenId> x, y;
    for (size_t i = 0; i < 40 && x.size() < 12; ++i) {
      if (rng.NextBool(0.4)) x.push_back(i);
    }
    if (x.empty()) continue;
    y = x;
    size_t edits = rng.NextBelow(4);
    for (size_t e = 0; e < edits; ++e) {
      if (rng.NextBool() && y.size() > 1) {
        y.erase(y.begin() + static_cast<ptrdiff_t>(rng.NextBelow(y.size())));
      } else {
        y.push_back(40 + rng.NextBelow(10));
      }
    }
    std::sort(y.begin(), y.end());
    y.erase(std::unique(y.begin(), y.end()), y.end());
    if (y.empty()) continue;

    double similarity = spec.Similarity(x, y);
    if (similarity < p.tau) continue;
    ++qualifying;

    EXPECT_GE(y.size(), spec.LengthLowerBound(x.size()));
    EXPECT_LE(y.size(), spec.LengthUpperBound(x.size()));
    EXPECT_GE(OverlapSize(x, y), spec.MinOverlap(x.size(), y.size()));

    size_t px = spec.PrefixLength(x.size());
    size_t py = spec.PrefixLength(y.size());
    std::vector<TokenId> x_prefix(x.begin(), x.begin() + px);
    std::vector<TokenId> y_prefix(y.begin(), y.begin() + py);
    EXPECT_GT(OverlapSize(x_prefix, y_prefix), 0u)
        << "prefix filter violated at sim=" << similarity;

    // Satisfies agrees with the exact computation.
    EXPECT_TRUE(spec.Satisfies(x, y));
  }
  EXPECT_GT(qualifying, 100) << "sweep produced too few qualifying pairs";
}

// Property: MinOverlap is exactly the satisfiability boundary — an overlap
// of MinOverlap achieves sim >= tau, one less does not.
TEST_P(BoundSoundnessTest, MinOverlapIsTight) {
  const SweepParam& p = GetParam();
  SimilaritySpec spec(p.fn, p.tau);
  for (size_t lx = 1; lx <= 30; ++lx) {
    for (size_t ly = 1; ly <= 30; ++ly) {
      size_t alpha = spec.MinOverlap(lx, ly);
      if (alpha <= std::min(lx, ly)) {
        double at_alpha = SimilarityFromOverlap(p.fn, alpha, lx, ly);
        EXPECT_GE(at_alpha, p.tau - 1e-9)
            << "fn=" << SimilarityFunctionName(p.fn) << " lx=" << lx
            << " ly=" << ly << " alpha=" << alpha;
      }
      if (alpha >= 1) {
        double below = SimilarityFromOverlap(p.fn, alpha - 1, lx, ly);
        EXPECT_LT(below, p.tau)
            << "fn=" << SimilarityFunctionName(p.fn) << " lx=" << lx
            << " ly=" << ly << " alpha=" << alpha;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FunctionsAndThresholds, BoundSoundnessTest,
    testing::Values(SweepParam{SimilarityFunction::kJaccard, 0.5},
                    SweepParam{SimilarityFunction::kJaccard, 0.8},
                    SweepParam{SimilarityFunction::kJaccard, 0.9},
                    SweepParam{SimilarityFunction::kCosine, 0.8},
                    SweepParam{SimilarityFunction::kCosine, 0.95},
                    SweepParam{SimilarityFunction::kDice, 0.8},
                    SweepParam{SimilarityFunction::kDice, 0.6},
                    SweepParam{SimilarityFunction::kOverlap, 0.8}),
    [](const testing::TestParamInfo<SweepParam>& info) {
      return std::string(SimilarityFunctionName(info.param.fn)) + "_" +
             std::to_string(static_cast<int>(info.param.tau * 100));
    });

}  // namespace
}  // namespace fj::sim
