// Tests for the sync capability layer (common/sync.h): the runtime
// lock-rank deadlock detector (seeded-violation death tests included),
// the TryLock exemption, SharedMutex rank participation, and CondVar.
//
// The detector defaults off under NDEBUG (the tier-1 RelWithDebInfo
// build), so every test arms it explicitly through the scoped toggle.
#include "common/sync.h"

#include <gtest/gtest.h>

#include <chrono>

#include "common/executor.h"

namespace fj {
namespace {

using sync_internal::DeadlockChecksEnabled;
using sync_internal::ScopedDeadlockChecksForTest;
using sync_internal::SetDeadlockChecksForTest;

TEST(SyncTest, MutexCarriesNameAndRank) {
  Mutex ranked{"transport.socket", lock_rank::kTransport};
  EXPECT_STREQ(ranked.name(), "transport.socket");
  EXPECT_EQ(ranked.rank(), lock_rank::kTransport);
  Mutex leaf{"counters"};
  EXPECT_EQ(leaf.rank(), kNoMutexRank);
}

TEST(SyncTest, ScopedToggleRestoresPreviousState) {
  const bool before = DeadlockChecksEnabled();
  {
    ScopedDeadlockChecksForTest checks(!before);
    EXPECT_EQ(DeadlockChecksEnabled(), !before);
  }
  EXPECT_EQ(DeadlockChecksEnabled(), before);
}

TEST(SyncTest, StrictlyDecreasingRankOrderIsLegal) {
  ScopedDeadlockChecksForTest checks(true);
  Mutex service{"svc", lock_rank::kService};
  Mutex transport{"xport", lock_rank::kTransport};
  Mutex queue{"deque", lock_rank::kExecutorQueue};
  MutexLock outer(&service);
  MutexLock mid(&transport);
  MutexLock inner(&queue);
}

TEST(SyncTest, UnrankedLeavesAreExemptInEitherPosition) {
  ScopedDeadlockChecksForTest checks(true);
  Mutex ranked{"svc", lock_rank::kService};
  Mutex leaf{"counters"};
  {
    MutexLock outer(&ranked);
    MutexLock inner(&leaf);
  }
  {
    MutexLock outer(&leaf);
    MutexLock inner(&ranked);
  }
}

TEST(SyncTest, TryLockIsExemptFromOrderCheck) {
  ScopedDeadlockChecksForTest checks(true);
  Mutex inner{"deque", lock_rank::kExecutorQueue};
  Mutex outer{"svc", lock_rank::kService};
  MutexLock hold(&inner);
  // A try-acquire cannot block, so it cannot complete a deadlock cycle;
  // taking a HIGHER rank via TryLock while holding a lower one is fine.
  ASSERT_TRUE(outer.TryLock());
  outer.Unlock();
}

TEST(SyncTest, SharedMutexWriterThenLowerRankIsLegal) {
  ScopedDeadlockChecksForTest checks(true);
  SharedMutex dfs{"dfs", lock_rank::kStorage};
  Mutex queue{"deque", lock_rank::kExecutorQueue};
  WriterMutexLock outer(&dfs);
  MutexLock inner(&queue);
}

TEST(SyncTest, DisabledDetectorIgnoresOutOfOrderAcquire) {
  ScopedDeadlockChecksForTest checks(false);
  Mutex inner{"deque", lock_rank::kExecutorQueue};
  Mutex outer{"svc", lock_rank::kService};
  // Out of order, but the detector is off: must not abort.
  MutexLock hold(&inner);
  MutexLock violate(&outer);
}

TEST(SyncTest, CondVarWaitForTimesOut) {
  Mutex mu{"cv.mu"};
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_FALSE(cv.WaitFor(&mu, std::chrono::milliseconds(5)));
}

TEST(SyncTest, CondVarCrossThreadNotifyWithRankedMutex) {
  ScopedDeadlockChecksForTest checks(true);
  Executor executor(2);
  TaskGroup group(&executor);
  Mutex mu{"cv.flag", lock_rank::kService};
  CondVar cv;
  bool flag = false;
  group.Spawn([&] {
    MutexLock lock(&mu);
    flag = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(&mu);
    while (!flag) cv.Wait(&mu);
    // Wait released and reacquired mu through the wrapper, so the rank
    // bookkeeping must still see it held: a lower rank is legal...
    Mutex queue{"deque", lock_rank::kExecutorQueue};
    MutexLock inner(&queue);
  }
  ASSERT_TRUE(group.Wait().ok());
}

// ---------------------------------------------------------------------------
// Seeded violations: the detector must abort, naming BOTH locks.

TEST(SyncDeathTest, OutOfOrderAcquireAbortsWithBothNames) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex inner{"executor.worker", lock_rank::kExecutorQueue};
  Mutex outer{"query_service", lock_rank::kService};
  EXPECT_DEATH(
      {
        ScopedDeadlockChecksForTest checks(true);
        MutexLock hold(&inner);
        MutexLock violate(&outer);
      },
      "lock-rank violation.*\"query_service\".*\"executor\\.worker\"");
}

TEST(SyncDeathTest, EqualRankIsAViolationToo) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a{"transport.a", lock_rank::kTransport};
  Mutex b{"transport.b", lock_rank::kTransport};
  EXPECT_DEATH(
      {
        ScopedDeadlockChecksForTest checks(true);
        MutexLock hold(&a);
        MutexLock violate(&b);
      },
      "lock-rank violation.*\"transport\\.b\".*\"transport\\.a\"");
}

TEST(SyncDeathTest, SuccessfulTryLockArmsLaterBlockingAcquires) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex tried{"try.tried", lock_rank::kService};
  Mutex blocked{"try.blocked", lock_rank::kService};
  EXPECT_DEATH(
      {
        ScopedDeadlockChecksForTest checks(true);
        ASSERT_TRUE(tried.TryLock());
        MutexLock violate(&blocked);
      },
      "lock-rank violation.*\"try\\.blocked\".*\"try\\.tried\"");
}

TEST(SyncDeathTest, ReaderAcquireParticipatesInRankOrder) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex inner{"executor.worker", lock_rank::kExecutorQueue};
  SharedMutex dfs{"dfs", lock_rank::kStorage};
  EXPECT_DEATH(
      {
        ScopedDeadlockChecksForTest checks(true);
        MutexLock hold(&inner);
        ReaderMutexLock violate(&dfs);
      },
      "lock-rank violation.*\"dfs\".*\"executor\\.worker\"");
}

}  // namespace
}  // namespace fj
