// LatencyHistogram: static-layout geometric buckets — bucket math,
// bounded quantile error, exact min/max/mean, merge, and reset.
#include "common/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"

namespace fj {
namespace {

TEST(LatencyHistogramTest, EmptyIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.min_seconds(), 0.0);
  EXPECT_EQ(h.max_seconds(), 0.0);
  EXPECT_EQ(h.mean_seconds(), 0.0);
  EXPECT_EQ(h.total_seconds(), 0.0);
}

TEST(LatencyHistogramTest, BucketIndexIsMonotoneAndInRange) {
  size_t prev = 0;
  for (uint64_t nanos : std::vector<uint64_t>{0, 1, 2, 3, 4, 5, 7, 8, 15, 16,
                                              100, 1000, 999999, 1u << 20,
                                              1ull << 40, 1ull << 62}) {
    size_t index = LatencyHistogram::BucketIndex(nanos);
    ASSERT_LT(index, LatencyHistogram::kBuckets) << nanos;
    EXPECT_GE(index, prev) << nanos;
    prev = index;
    // The bucket's lower bound never exceeds the value it holds.
    EXPECT_LE(LatencyHistogram::BucketLowerBound(index), nanos);
  }
}

TEST(LatencyHistogramTest, BucketLowerBoundInvertsBucketIndex) {
  for (size_t index = 0; index < LatencyHistogram::kBuckets; ++index) {
    uint64_t lower = LatencyHistogram::BucketLowerBound(index);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lower), index) << index;
  }
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // Values 0..3 ns get their own buckets: quantiles are exact.
  LatencyHistogram h;
  for (uint64_t v : {0, 1, 1, 2, 3}) h.RecordNanos(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 3e-9);
  EXPECT_NEAR(h.Quantile(0.5), 1e-9, 1e-12);
}

TEST(LatencyHistogramTest, QuantileErrorIsBounded) {
  // 4 sub-buckets per octave bound the relative quantile error by 1/8
  // (half a sub-bucket width of 1/4); interpolation usually does better,
  // but 12.5% plus the exact-[min,max] clamp is the guarantee.
  Rng rng(42);
  std::vector<uint64_t> samples;
  LatencyHistogram h;
  for (int i = 0; i < 10000; ++i) {
    // Log-uniform over ~6 decades, the shape of real latency tails.
    double log_ns = 2.0 + 6.0 * rng.NextDouble();
    auto nanos = static_cast<uint64_t>(std::pow(10.0, log_ns));
    samples.push_back(nanos);
    h.RecordNanos(nanos);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999}) {
    auto rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    rank = std::min(std::max<size_t>(rank, 1), samples.size());
    double exact = static_cast<double>(samples[rank - 1]) * 1e-9;
    double estimate = h.Quantile(q);
    EXPECT_NEAR(estimate, exact, 0.125 * exact) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MinMaxMeanAreExactNotQuantized) {
  LatencyHistogram h;
  h.Record(0.001237);  // would land in a ~12% wide bucket
  h.Record(0.004100);
  h.Record(0.000500);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 0.000500);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0.004100);
  EXPECT_NEAR(h.mean_seconds(), (0.001237 + 0.004100 + 0.000500) / 3, 1e-9);
  // Quantiles clamp to the exact extremes.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.000500);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.004100);
}

TEST(LatencyHistogramTest, NegativeAndNonFiniteClampToZero) {
  LatencyHistogram h;
  h.Record(-1.0);
  h.Record(std::nan(""));
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0.0);
}

TEST(LatencyHistogramTest, MergeEqualsRecordingEverythingIntoOne) {
  Rng rng(7);
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 500; ++i) {
    uint64_t nanos = 10 + rng.NextBelow(1000000);
    if (i % 2 == 0) {
      a.RecordNanos(nanos);
    } else {
      b.RecordNanos(nanos);
    }
    combined.RecordNanos(nanos);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.total_seconds(), combined.total_seconds());
  EXPECT_DOUBLE_EQ(a.min_seconds(), combined.min_seconds());
  EXPECT_DOUBLE_EQ(a.max_seconds(), combined.max_seconds());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), combined.Quantile(q)) << q;
  }
}

TEST(LatencyHistogramTest, MergeDisjointRangesSpansBoth) {
  // Fast microsecond-scale fetches merged with slow hundreds-of-ms
  // retries (the shapes the per-fetch latency histograms actually merge):
  // the ranges share no bucket, so the merged view must keep both modes
  // distinguishable instead of smearing them together.
  LatencyHistogram fast, slow;
  for (int i = 0; i < 1000; ++i) {
    fast.RecordNanos(1000 + static_cast<uint64_t>(i));        // ~1 us
    slow.RecordNanos(200000000 + static_cast<uint64_t>(i));   // ~200 ms
  }
  LatencyHistogram merged = fast;
  merged.Merge(slow);
  EXPECT_EQ(merged.count(), 2000u);
  EXPECT_DOUBLE_EQ(merged.min_seconds(), fast.min_seconds());
  EXPECT_DOUBLE_EQ(merged.max_seconds(), slow.max_seconds());
  // Below the gap every sample is fast; above it, slow. The median sits
  // in the gap boundary: p25 must read as fast, p75 as slow.
  EXPECT_LT(merged.Quantile(0.25), 1e-5);
  EXPECT_GT(merged.Quantile(0.75), 0.1);
  // The exact totals add, no quantization loss.
  EXPECT_DOUBLE_EQ(merged.total_seconds(),
                   fast.total_seconds() + slow.total_seconds());
}

TEST(LatencyHistogramTest, MergeOverlappingRangesMatchesUnionRecording) {
  // Overlapping distributions (shifted but interleaved ranges) merged
  // pairwise must be indistinguishable from recording the union directly
  // — bucket counts add exactly, so this holds for every quantile, not
  // just the tracked extremes.
  Rng rng(13);
  LatencyHistogram a, b, unioned;
  for (int i = 0; i < 400; ++i) {
    uint64_t lo = 500 + rng.NextBelow(5000);    // [0.5us, 5.5us)
    uint64_t hi = 3000 + rng.NextBelow(5000);   // [3us, 8us) — overlaps
    a.RecordNanos(lo);
    b.RecordNanos(hi);
    unioned.RecordNanos(lo);
    unioned.RecordNanos(hi);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), unioned.count());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), unioned.Quantile(q)) << q;
  }
  EXPECT_DOUBLE_EQ(a.mean_seconds(), unioned.mean_seconds());
}

TEST(LatencyHistogramTest, MergeWithEmptyIsIdentity) {
  LatencyHistogram a, empty;
  a.Record(0.5);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.max_seconds(), 0.5);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.min_seconds(), 0.5);
}

TEST(LatencyHistogramTest, ResetForgetsEverything) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.RecordNanos(static_cast<uint64_t>(i));
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.99), 0.0);
  EXPECT_EQ(h.max_seconds(), 0.0);
  // Usable again after reset.
  h.Record(0.002);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.002);
}

TEST(LatencyHistogramTest, SummaryMentionsCountAndQuantiles) {
  LatencyHistogram h;
  for (int i = 0; i < 32; ++i) h.Record(0.0015);
  std::string summary = h.Summary();
  EXPECT_NE(summary.find("n=32"), std::string::npos) << summary;
  EXPECT_NE(summary.find("p50="), std::string::npos) << summary;
  EXPECT_NE(summary.find("p99="), std::string::npos) << summary;
  EXPECT_NE(summary.find("ms"), std::string::npos) << summary;
}

TEST(LatencyHistogramTest, SaturatesInsteadOfOverflowing) {
  LatencyHistogram h;
  h.Record(1e12);  // ~31,700 years; saturates near 2^63 ns
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.max_seconds(), 1e9);
  EXPECT_LT(LatencyHistogram::BucketIndex(~uint64_t{0}),
            LatencyHistogram::kBuckets);
}

}  // namespace
}  // namespace fj
