// Foundation tests: Status/Result, string utilities, hashing, counters.
#include <gtest/gtest.h>

#include "common/counters.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace fj {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("file x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "file x");
  EXPECT_EQ(s.ToString(), "NotFound: file x");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (auto code : {StatusCode::kOk, StatusCode::kInvalidArgument,
                    StatusCode::kNotFound, StatusCode::kAlreadyExists,
                    StatusCode::kOutOfRange, StatusCode::kResourceExhausted,
                    StatusCode::kInternal, StatusCode::kIOError,
                    StatusCode::kUnimplemented, StatusCode::kDataLoss,
                    StatusCode::kFailedPrecondition}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  FJ_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  auto ok = Doubled(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 8);
  EXPECT_EQ(*ok, 8);

  auto err = Doubled(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a|b|c", '|'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a||c", '|'), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", '|'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("|", '|'), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitNLimitsFields) {
  EXPECT_EQ(SplitN("a\tb\tc\td", '\t', 2),
            (std::vector<std::string>{"a", "b\tc\td"}));
  EXPECT_EQ(SplitN("a", '\t', 3), (std::vector<std::string>{"a"}));
  EXPECT_EQ(SplitN("a\tb", '\t', 1), (std::vector<std::string>{"a\tb"}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"x", "", "yz"};
  EXPECT_EQ(Split(Join(parts, ','), ','), parts);
  EXPECT_EQ(Join(parts, "--"), "x----yz");
  EXPECT_EQ(Join({}, ','), "");
}

TEST(StringUtilTest, CaseAndTrim) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(Trim("  x y\t\n"), "x y");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, ParseUint64) {
  EXPECT_EQ(ParseUint64("0").value(), 0u);
  EXPECT_EQ(ParseUint64("18446744073709551615").value(), UINT64_MAX);
  EXPECT_FALSE(ParseUint64("18446744073709551616").ok());  // overflow
  EXPECT_FALSE(ParseUint64("").ok());
  EXPECT_FALSE(ParseUint64("12x").ok());
  EXPECT_FALSE(ParseUint64("-1").ok());
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("-42").value(), -42);
  EXPECT_EQ(ParseInt64("+7").value(), 7);
  EXPECT_EQ(ParseInt64("-9223372036854775808").value(), INT64_MIN);
  EXPECT_FALSE(ParseInt64("-9223372036854775809").ok());
  EXPECT_EQ(ParseInt64("9223372036854775807").value(), INT64_MAX);
  EXPECT_FALSE(ParseInt64("9223372036854775808").ok());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.5").value(), 0.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("stage2-pk", "stage2"));
  EXPECT_FALSE(StartsWith("st", "stage"));
  EXPECT_TRUE(EndsWith("out.joined", ".joined"));
  EXPECT_FALSE(EndsWith("x", "long-suffix"));
}

TEST(HashTest, StableAndSpreading) {
  EXPECT_EQ(HashString("token"), HashString("token"));
  EXPECT_NE(HashString("token"), HashString("tokem"));
  EXPECT_NE(HashInt64(1), HashInt64(2));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(CounterTest, AddGetMergeMax) {
  CounterSet a;
  a.Add("x", 3);
  a.Add("x", 4);
  EXPECT_EQ(a.Get("x"), 7);
  EXPECT_EQ(a.Get("missing"), 0);

  CounterSet b;
  b.Add("x", 1);
  b.Add("y", 2);
  a.MergeFrom(b);
  EXPECT_EQ(a.Get("x"), 8);
  EXPECT_EQ(a.Get("y"), 2);

  a.Max("peak", 5);
  a.Max("peak", 3);
  a.Max("peak", 9);
  EXPECT_EQ(a.Get("peak"), 9);

  auto snapshot = a.Snapshot();
  EXPECT_EQ(snapshot.size(), 3u);
  a.Clear();
  EXPECT_EQ(a.Get("x"), 0);
}

TEST(CounterTest, CopyGetsIndependentState) {
  CounterSet a;
  a.Add("x", 1);
  CounterSet b = a;
  b.Add("x", 1);
  EXPECT_EQ(a.Get("x"), 1);
  EXPECT_EQ(b.Get("x"), 2);
}

}  // namespace
}  // namespace fj
