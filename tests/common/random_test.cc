// Rng / Zipf sampler tests: determinism, range contracts, skew shape.
#include "common/random.h"

#include <algorithm>
#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace fj {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true, any_diff_seed_differs = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    if (va != b.Next()) all_equal = false;
    if (va != c.Next()) any_diff_seed_differs = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_differs);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(7), 7u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(8);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.NextBool(0.2);
  EXPECT_NEAR(heads / 100000.0, 0.2, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(10);
  std::map<size_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[zipf.Sample(&rng)]++;
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(count / 100000.0, 0.1, 0.02) << "rank " << rank;
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  ZipfSampler zipf(1000, 1.0);
  Rng rng(11);
  std::map<size_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[zipf.Sample(&rng)]++;
  // Rank 0 should dominate rank 99 by roughly 100x under theta = 1.
  ASSERT_GT(counts[0], 0);
  EXPECT_GT(counts[0], counts[99] * 20);
  // Every sample is in range.
  for (const auto& [rank, count] : counts) EXPECT_LT(rank, 1000u);
}

TEST(ZipfTest, SingleElementAlwaysSampled) {
  ZipfSampler zipf(1, 0.9);
  Rng rng(12);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

}  // namespace
}  // namespace fj
