// ThreadPool / RunParallel behaviour.
#include "common/thread_pool.h"

#include <functional>
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace fj {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, WaitBlocksUntilDrained) {
  std::atomic<int> sum{0};
  ThreadPool pool(2);
  for (int i = 1; i <= 50; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 1275);
  // Pool is reusable after Wait.
  pool.Submit([&sum] { sum.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(sum.load(), 1276);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) pool.Submit([&count] { count.fetch_add(1); });
  }  // destructor joins
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(RunParallelTest, SingleThreadRunsInline) {
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back([&order, i] { order.push_back(i); });
  }
  RunParallel(tasks, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // in-order inline
}

TEST(RunParallelTest, MultiThreadCompletesEverything) {
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks(64,
                                           [&count] { count.fetch_add(1); });
  RunParallel(tasks, 8);
  EXPECT_EQ(count.load(), 64);
}

TEST(RunParallelTest, EmptyTaskList) {
  RunParallel({}, 4);  // must not hang or crash
}

}  // namespace
}  // namespace fj
