// Tests for the persistent work-stealing executor (common/executor.h):
// submit/steal under load, nested spawns growing the task graph,
// exception capture into Status, per-worker identity, oversubscription,
// and the empty-group fast path.
#include "common/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/status.h"

namespace fj {
namespace {

TEST(ResolveWorkerCountTest, PositiveRequestIsTakenVerbatim) {
  EXPECT_EQ(ResolveWorkerCount(1), 1u);
  EXPECT_EQ(ResolveWorkerCount(7), 7u);
}

TEST(ResolveWorkerCountTest, ZeroMeansHardwareConcurrency) {
  const size_t resolved = ResolveWorkerCount(0);
  EXPECT_GE(resolved, 1u);
  if (std::thread::hardware_concurrency() > 0) {
    EXPECT_EQ(resolved, std::thread::hardware_concurrency());
  }
}

TEST(ExecutorTest, ZeroThreadsResolvesToAtLeastOneWorker) {
  Executor executor(0);
  EXPECT_GE(executor.num_workers(), 1u);
  EXPECT_EQ(executor.num_workers(), ResolveWorkerCount(0));
}

TEST(ExecutorTest, RunsEveryTaskExactlyOnce) {
  Executor executor(4);
  constexpr size_t kTasks = 1000;
  std::vector<std::atomic<int>> ran(kTasks);
  TaskGroup group(&executor);
  for (size_t i = 0; i < kTasks; ++i) {
    group.Spawn([&ran, i] { ran[i].fetch_add(1); });
  }
  ASSERT_TRUE(group.Wait().ok());
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(ran[i].load(), 1);
  EXPECT_GE(executor.stats().tasks_executed, kTasks);
}

TEST(ExecutorTest, EmptyGroupWaitReturnsImmediately) {
  Executor executor(2);
  TaskGroup group(&executor);
  EXPECT_TRUE(group.Wait().ok());
  // Waiting again is also fine (Wait is idempotent once drained).
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(executor.stats().tasks_executed, 0u);
}

TEST(ExecutorTest, NestedSpawnGrowsTheGraph) {
  Executor executor(3);
  std::atomic<size_t> leaves{0};
  TaskGroup group(&executor);
  // Each root task spawns children from inside the pool; Wait must drain
  // tasks spawned by tasks, not just the initial submissions.
  for (int root = 0; root < 8; ++root) {
    group.Spawn([&group, &leaves] {
      for (int child = 0; child < 16; ++child) {
        group.Spawn([&leaves] { leaves.fetch_add(1); });
      }
    });
  }
  ASSERT_TRUE(group.Wait().ok());
  EXPECT_EQ(leaves.load(), 8u * 16u);
}

TEST(ExecutorTest, TaskExceptionBecomesInternalStatus) {
  Executor executor(2);
  std::atomic<int> survivors{0};
  TaskGroup group(&executor);
  group.Spawn([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 50; ++i) {
    group.Spawn([&survivors] { survivors.fetch_add(1); });
  }
  Status status = group.Wait();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("boom"), std::string::npos);
  // The failure did not cancel the rest of the group.
  EXPECT_EQ(survivors.load(), 50);
}

TEST(ExecutorTest, NonStdExceptionIsCapturedToo) {
  Executor executor(1);
  TaskGroup group(&executor);
  group.Spawn([] { throw 42; });  // NOLINT(hicpp-exception-baseclass)
  Status status = group.Wait();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(ExecutorTest, CurrentWorkerIndexIdentifiesWorkers) {
  Executor executor(4);
  // The submitting thread is not a worker.
  EXPECT_EQ(executor.CurrentWorkerIndex(), Executor::kNotAWorker);
  Mutex mu{"test.seen"};
  std::set<size_t> seen;
  TaskGroup group(&executor);
  for (int i = 0; i < 200; ++i) {
    group.Spawn([&executor, &mu, &seen] {
      const size_t index = executor.CurrentWorkerIndex();
      MutexLock lock(&mu);
      seen.insert(index);
    });
  }
  ASSERT_TRUE(group.Wait().ok());
  EXPECT_EQ(seen.count(Executor::kNotAWorker), 0u);
  for (size_t index : seen) EXPECT_LT(index, executor.num_workers());
}

TEST(ExecutorTest, SingleWorkerRunsNestedSpawnsWithoutDeadlock) {
  // A 1-worker executor must still drain tasks spawned from inside the
  // only worker (they cannot be stolen — only popped locally).
  Executor executor(1);
  std::atomic<int> total{0};
  TaskGroup group(&executor);
  group.Spawn([&group, &total] {
    total.fetch_add(1);
    group.Spawn([&group, &total] {
      total.fetch_add(1);
      group.Spawn([&total] { total.fetch_add(1); });
    });
  });
  ASSERT_TRUE(group.Wait().ok());
  EXPECT_EQ(total.load(), 3);
}

TEST(ExecutorTest, OversubscriptionStressWithUnevenTasks) {
  // Far more workers than cores and far more tasks than workers, with
  // wildly uneven task sizes — the steal path must keep everything moving
  // and every task must run exactly once.
  Executor executor(16);
  constexpr size_t kTasks = 2000;
  std::vector<std::atomic<int>> ran(kTasks);
  TaskGroup group(&executor);
  for (size_t i = 0; i < kTasks; ++i) {
    group.Spawn([&ran, i] {
      if (i % 97 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      ran[i].fetch_add(1);
    });
  }
  ASSERT_TRUE(group.Wait().ok());
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(ran[i].load(), 1);
  const ExecutorStats stats = executor.stats();
  EXPECT_GE(stats.tasks_executed, kTasks);
  EXPECT_GT(stats.busy_seconds, 0.0);
}

TEST(ExecutorTest, StealsHappenUnderImbalancedLoad) {
  // All tasks are submitted from one external thread in a burst while
  // workers sleep inside the first tasks; idle workers must steal. The
  // round-robin external spread makes literal steals probabilistic, so
  // spawn nested children from one task: they land on ONE worker's deque
  // and the others can only get them by stealing.
  Executor executor(4);
  std::atomic<size_t> done{0};
  TaskGroup group(&executor);
  group.Spawn([&group, &done] {
    for (int i = 0; i < 256; ++i) {
      group.Spawn([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        done.fetch_add(1);
      });
    }
  });
  ASSERT_TRUE(group.Wait().ok());
  EXPECT_EQ(done.load(), 256u);
  // With one producer deque and 4 consumers, at least one task must have
  // been stolen (3 workers have nothing else to run).
  EXPECT_GT(executor.stats().tasks_stolen, 0u);
}

TEST(ExecutorTest, StatsDeltaMetersOneBatch) {
  Executor executor(2);
  {
    TaskGroup group(&executor);
    for (int i = 0; i < 10; ++i) group.Spawn([] {});
    ASSERT_TRUE(group.Wait().ok());
  }
  const ExecutorStats before = executor.stats();
  {
    TaskGroup group(&executor);
    for (int i = 0; i < 25; ++i) group.Spawn([] {});
    ASSERT_TRUE(group.Wait().ok());
  }
  const ExecutorStats delta = executor.stats() - before;
  EXPECT_EQ(delta.tasks_executed, 25u);
  EXPECT_EQ(delta.workers, 2u);
}

TEST(ExecutorTest, ManyGroupsShareOneExecutor) {
  // The pipeline pattern: one persistent executor, a fresh TaskGroup per
  // job. Groups must not interfere.
  Executor executor(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    TaskGroup group(&executor);
    for (int i = 0; i < 64; ++i) {
      group.Spawn([&count] { count.fetch_add(1); });
    }
    ASSERT_TRUE(group.Wait().ok());
    EXPECT_EQ(count.load(), 64);
  }
}

TEST(ExecutorTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> ran{0};
  {
    Executor executor(2);
    TaskGroup group(&executor);
    for (int i = 0; i < 100; ++i) {
      group.Spawn([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
        ran.fetch_add(1);
      });
    }
    // TaskGroup's destructor Waits; the executor's joins. Either way no
    // task may be dropped.
  }
  EXPECT_EQ(ran.load(), 100);
}

}  // namespace
}  // namespace fj
