// Tokenizers and the global token ordering.
#include <gtest/gtest.h>

#include "text/token_ordering.h"
#include "text/tokenizer.h"

namespace fj::text {
namespace {

TEST(WordTokenizerTest, PaperExample) {
  WordTokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("I will call back"),
            (std::vector<std::string>{"i", "will", "call", "back"}));
}

TEST(WordTokenizerTest, PunctuationAndCase) {
  WordTokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("Smith, John W."),
            (std::vector<std::string>{"smith", "john", "w"}));
  EXPECT_EQ(tokenizer.Tokenize("  --  "), (std::vector<std::string>{}));
  EXPECT_EQ(tokenizer.Tokenize(""), (std::vector<std::string>{}));
  EXPECT_EQ(tokenizer.Tokenize("a1b2"), (std::vector<std::string>{"a1b2"}));
}

TEST(WordTokenizerTest, DuplicatePolicies) {
  WordTokenizer remove_dups(DuplicatePolicy::kRemove);
  EXPECT_EQ(remove_dups.Tokenize("to be or not to be"),
            (std::vector<std::string>{"to", "be", "or", "not"}));
  WordTokenizer number_dups(DuplicatePolicy::kNumber);
  EXPECT_EQ(number_dups.Tokenize("to be or not to be"),
            (std::vector<std::string>{"to", "be", "or", "not", "to#1",
                                      "be#1"}));
}

TEST(QGramTokenizerTest, PaddedGrams) {
  QGramTokenizer tokenizer(3, DuplicatePolicy::kRemove);
  auto grams = tokenizer.Tokenize("ab");
  // "$$ab##" -> $$a, $ab, ab#, b##
  EXPECT_EQ(grams, (std::vector<std::string>{"$$a", "$ab", "ab#", "b##"}));
  EXPECT_EQ(tokenizer.Name(), "qgram3");
}

TEST(QGramTokenizerTest, NormalizesWhitespaceAndCase) {
  QGramTokenizer tokenizer(2, DuplicatePolicy::kRemove);
  EXPECT_EQ(tokenizer.Tokenize("A  B"), tokenizer.Tokenize("a b"));
  EXPECT_EQ(tokenizer.Tokenize("-a"), tokenizer.Tokenize("a"));
}

TEST(QGramTokenizerTest, EmptyAndDegenerate) {
  QGramTokenizer tokenizer(3);
  EXPECT_EQ(tokenizer.Tokenize("").size(), 2u);  // "$$##" -> $$#, $##
  QGramTokenizer q1(1);
  EXPECT_TRUE(q1.Tokenize("").empty());
  EXPECT_EQ(q1.Tokenize("ab"), (std::vector<std::string>{"a", "b"}));
  QGramTokenizer q0(0);  // clamped to 1
  EXPECT_EQ(q0.q(), 1u);
}

TEST(TokenOrderingTest, RanksByFrequencyThenToken) {
  auto ordering = TokenOrdering::FromCounts(
      {{"common", 10}, {"rare", 1}, {"mid", 5}, {"also1", 1}});
  // rare ties broken lexicographically: also1 < rare.
  EXPECT_EQ(ordering.Rank("also1").value(), 0u);
  EXPECT_EQ(ordering.Rank("rare").value(), 1u);
  EXPECT_EQ(ordering.Rank("mid").value(), 2u);
  EXPECT_EQ(ordering.Rank("common").value(), 3u);
  EXPECT_FALSE(ordering.Rank("absent").has_value());
  EXPECT_EQ(ordering.size(), 4u);
  EXPECT_EQ(ordering.TokenOfRank(2), "mid");
  EXPECT_EQ(ordering.FrequencyOfRank(3), 10u);
}

TEST(TokenOrderingTest, LinesRoundTrip) {
  auto ordering =
      TokenOrdering::FromCounts({{"a", 3}, {"b", 1}, {"c", 2}});
  auto lines = ordering.ToLines();
  EXPECT_EQ(lines, (std::vector<std::string>{"b\t1", "c\t2", "a\t3"}));
  auto parsed = TokenOrdering::FromLines(lines);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Rank("b").value(), 0u);
  EXPECT_EQ(parsed->Rank("a").value(), 2u);
  EXPECT_EQ(parsed->ToLines(), lines);
}

TEST(TokenOrderingTest, FromLinesRejectsGarbage) {
  EXPECT_FALSE(TokenOrdering::FromLines({"no-tab-here"}).ok());
  EXPECT_FALSE(TokenOrdering::FromLines({"a\tnotanumber"}).ok());
  EXPECT_FALSE(TokenOrdering::FromLines({"a\t1", "a\t2"}).ok());  // dup
}

TEST(TokenOrderingTest, UnknownTokensGetStableHighIds) {
  auto ordering = TokenOrdering::FromCounts({{"known", 2}});
  TokenId unknown = ordering.IdOf("mystery");
  EXPECT_TRUE(IsUnknownToken(unknown));
  EXPECT_EQ(unknown, ordering.IdOf("mystery"));  // stable
  EXPECT_FALSE(IsUnknownToken(ordering.IdOf("known")));
  EXPECT_NE(ordering.IdOf("mystery"), ordering.IdOf("mystery2"));
}

TEST(TokenOrderingTest, ToSortedIdsOrdersRareFirstUnknownLast) {
  auto ordering = TokenOrdering::FromCounts({{"freq", 9}, {"rare", 1}});
  auto ids = ordering.ToSortedIds({"freq", "mystery", "rare"});
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], ordering.Rank("rare").value());
  EXPECT_EQ(ids[1], ordering.Rank("freq").value());
  EXPECT_TRUE(IsUnknownToken(ids[2]));
}

TEST(TokenOrderingTest, ToSortedIdsDeduplicates) {
  auto ordering = TokenOrdering::FromCounts({{"a", 1}, {"b", 2}});
  EXPECT_EQ(ordering.ToSortedIds({"b", "a", "b", "a"}).size(), 2u);
}

TEST(TokenOrderingTest, EmptyOrdering) {
  TokenOrdering ordering;
  EXPECT_TRUE(ordering.empty());
  EXPECT_TRUE(IsUnknownToken(ordering.IdOf("anything")));
  EXPECT_TRUE(ordering.ToSortedIds({}).empty());
}

}  // namespace
}  // namespace fj::text
